//! Serving many prepared queries off **one** delta stream.
//!
//! A single [`crate::prepared::PreparedQuery`] owns its fragmentation, so
//! `K` standing queries over the same evolving graph would apply every
//! `ΔG` `K` times and hold `K` fragment timelines.  The paper's
//! preprocess-once / answer-under-updates protocol (Section 3.4) only pays
//! off at scale when the preparation work — and the per-delta partition
//! maintenance — is **amortized** across all standing queries, the same
//! economy the answering-under-updates literature (Berkholz–Keppeler–
//! Schweikardt and the constant-delay-enumeration line) gets from separating
//! preprocessing from the update/answer loop.
//!
//! [`GrapeServer`] is that amortization layer:
//!
//! * it owns **one** `Arc`-shared [`Fragmentation`] timeline;
//! * [`GrapeServer::register`] prepares a query against the current version
//!   and returns a typed [`QueryHandle`];
//! * [`GrapeServer::apply`] runs `Fragmentation::apply_delta` **exactly
//!   once** per `ΔG` and fans the resulting [`DeltaApplication`] out to
//!   every resident query through its own monotone/bounded/full decision
//!   table (the crate-internal `PreparedQuery::refresh_from` — the update
//!   path of [`crate::prepared`] with the partition work factored out);
//!   the rebuilt fragment set is shared by all of them via the existing
//!   `Arc<Fragment>` refcounting;
//! * [`GrapeServer::evict`] spills a cold query's fragments and partials to
//!   a per-fragment binary snapshot file
//!   ([`grape_partition::snapshot`]) and frees its in-memory state; the
//!   next [`GrapeServer::output`] (or an explicit
//!   [`GrapeServer::rehydrate`]) reloads it — **without re-partitioning
//!   and without a single PEval call** — and replays the deltas that
//!   arrived while it was cold from the server's retained timeline.
//!
//! The timeline keeps one fragmentation per version only while an evicted
//! query — or a resident one left *behind* by a failed refresh — still
//! needs it for replay (fragment storage is `Arc`-shared across versions,
//! so retaining a version costs one rebuilt-fragment delta, not a copy of
//! the graph); once every query has caught up the history is pruned.
//!
//! Refresh failures keep every query's version honest.  A failed
//! monotone/bounded refresh poisons the query (its partials were consumed),
//! and the server quarantines it.  A failed **full** re-preparation leaves
//! the handle consistent at its pre-delta fragmentation, so the server
//! keeps the query on its old version and replays the retained steps into
//! it — exactly like an evicted query — before its next refresh or
//! `output()`; it is never handed a [`DeltaApplication`] derived from a
//! fragmentation it does not hold.

use std::any::Any;
use std::io::{Read, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use grape_graph::delta::GraphDelta;
use grape_graph::io::{ensure_fully_consumed, read_value_tree, write_value_tree, IoError};
use grape_graph::types::VertexId;
use grape_partition::delta::{DeltaApplication, FragmentDelta};
use grape_partition::fragment::{Fragment, Fragmentation};
use grape_partition::snapshot::{
    read_fragments, rehydrate_fragmentation, write_fragments, SnapshotError,
};
use serde::{Deserialize, Serialize, Value};

use crate::engine::EngineError;
use crate::metrics::EngineMetrics;
use crate::pie::IncrementalPie;
use crate::prepared::{PreparedQuery, UpdateReport};
use crate::session::GrapeSession;

/// Magic header of a query spill file: "GRQS" + format version 1.
const SPILL_MAGIC: &[u8; 5] = b"GRQS\x01";

/// Process-unique server tokens: stamped into every [`QueryHandle`] so a
/// handle cannot silently operate on a *different* server that happens to
/// hold a same-typed query under the same id, and used to name the default
/// spill directory.
static SERVER_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// An engine error surfaced by prepare/refresh (including
    /// [`EngineError::PoisonedHandle`] for queries wrecked by an earlier
    /// failed refresh).
    Engine(EngineError),
    /// The delta was rejected by the partition layer; the timeline did not
    /// advance.
    Delta(String),
    /// The handle does not belong to this server (or the query type of the
    /// handle does not match the registered entry).
    UnknownHandle(usize),
    /// The query is already evicted.
    AlreadyEvicted(usize),
    /// A spill file could not be written, read back, or decoded.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Delta(reason) => write!(f, "cannot apply graph delta: {reason}"),
            ServeError::UnknownHandle(id) => {
                write!(f, "query handle {id} is not registered with this server")
            }
            ServeError::AlreadyEvicted(id) => write!(f, "query {id} is already evicted"),
            ServeError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Snapshot(SnapshotError::Io(IoError::Io(e)))
    }
}

impl From<IoError> for ServeError {
    fn from(e: IoError) -> Self {
        ServeError::Snapshot(SnapshotError::Io(e))
    }
}

/// A typed handle on a query registered with a [`GrapeServer`].  Cheap to
/// copy; the type parameter lets [`GrapeServer::output`] return the
/// program's real output type without downcasting at the call site, and
/// the embedded server token rejects handles presented to a server they
/// were not issued by.
pub struct QueryHandle<P> {
    server: usize,
    id: usize,
    _marker: PhantomData<fn() -> P>,
}

impl<P> QueryHandle<P> {
    /// The server-scoped query id (stable for the server's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }
}

impl<P> Clone for QueryHandle<P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P> Copy for QueryHandle<P> {}

impl<P> std::fmt::Debug for QueryHandle<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryHandle({})", self.id)
    }
}

/// One registered query's refresh outcome within a [`ServeReport`].
#[derive(Debug)]
pub struct QueryRefresh {
    /// The query id ([`QueryHandle::id`]).
    pub query: usize,
    /// The query's own [`UpdateReport`] — or the engine error that stopped
    /// it (the server keeps serving the others).  A monotone/bounded
    /// refresh error poisons the query; a failed **full** re-preparation
    /// leaves it consistent at its pre-delta version, and the server
    /// retains the step and replays it (like an evicted query) before the
    /// next refresh or output.
    pub result: Result<UpdateReport, EngineError>,
}

/// What one [`GrapeServer::apply`] did: one `apply_delta`, then one refresh
/// per resident query.
#[derive(Debug)]
pub struct ServeReport {
    /// Timeline version after this delta.
    pub version: usize,
    /// Fragments the **single** delta application rebuilt — by construction
    /// identical to the `rebuilt` set of every per-query [`UpdateReport`].
    pub rebuilt: Vec<usize>,
    /// Fragments whose `Arc` storage every query keeps sharing verbatim.
    pub reused: usize,
    /// Per-query refresh outcomes, in registration order.
    pub refreshed: Vec<QueryRefresh>,
    /// Resident queries that were behind (an earlier full re-preparation
    /// failed) and were caught up by replaying the retained steps before
    /// this delta was applied to them.  Their [`QueryRefresh`] covers this
    /// delta only, not the replay.
    pub caught_up: Vec<usize>,
    /// Evicted queries whose refresh is deferred until rehydration (the
    /// server retains the timeline they will replay from).
    pub deferred: Vec<usize>,
    /// Queries skipped because an earlier failed refresh poisoned them.
    pub poisoned: Vec<usize>,
}

impl ServeReport {
    /// Total PEval invocations across every successful per-query refresh —
    /// `0` when the whole delta stream stays on the monotone path.
    pub fn peval_calls(&self) -> usize {
        self.refreshed
            .iter()
            .filter_map(|r| r.result.as_ref().ok())
            .map(|r| r.metrics.peval_calls)
            .sum()
    }
}

/// What one [`GrapeServer::rehydrate`] did: the spill reload itself runs
/// zero PEval calls; `replayed` holds the per-delta reports of catching the
/// query up to the current timeline version.
#[derive(Debug)]
pub struct RehydrationReport {
    /// The query id.
    pub query: usize,
    /// One report per delta that arrived while the query was cold.
    pub replayed: Vec<UpdateReport>,
}

impl RehydrationReport {
    /// Total PEval invocations of the replay — `0` when every pending delta
    /// is monotone (and always `0` for an up-to-date evict → rehydrate
    /// round trip).
    pub fn peval_calls(&self) -> usize {
        self.replayed.iter().map(|r| r.metrics.peval_calls).sum()
    }
}

/// One step of the timeline: the delta and its per-fragment restrictions,
/// retained so evicted queries can replay the refresh without a second
/// `apply_delta`.
struct ServeStep {
    delta: GraphDelta,
    affected: Vec<FragmentDelta>,
}

/// Object-safe view of one registered query, erasing the program type.
trait ServedQuery: Send {
    fn refresh(
        &mut self,
        applied: &DeltaApplication,
        delta: &GraphDelta,
    ) -> Result<UpdateReport, EngineError>;
    fn evict(&mut self, path: &Path) -> Result<(), ServeError>;
    /// Reloads the entry from its spill file.  Returns the spill path; the
    /// file is **not** deleted here — the server reclaims it only after the
    /// post-reload replay fully succeeds, so the on-disk snapshot stays a
    /// valid recovery point until then.
    fn rehydrate(&mut self, at: &Fragmentation) -> Result<PathBuf, ServeError>;
    /// Drops the resident in-memory state (possibly poisoned or
    /// half-replayed) and points the entry back at `spill` — the inverse of
    /// a reload whose replay failed.  The snapshot on disk becomes the
    /// entry's state again (with `book` as its counters), so the entry is
    /// evicted and retryable.
    fn demote(&mut self, spill: &Path, book: QueryBookkeeping);
    /// The entry's current counters/metrics — from the live handle when
    /// resident, from the cold state when evicted.
    fn bookkeeping(&self) -> QueryBookkeeping;
    fn is_evicted(&self) -> bool;
    fn is_poisoned(&self) -> bool;
    fn as_any(&self) -> &dyn Any;
}

/// The counters and metrics of a query that must survive an evict →
/// rehydrate round trip.  Captured *before* a post-reload replay so that a
/// failed replay can fall back to the values the on-disk snapshot actually
/// corresponds to — the successfully replayed prefix is rolled back with
/// the state, not double-counted by the retry.
#[derive(Clone)]
struct QueryBookkeeping {
    prepare_metrics: EngineMetrics,
    last_metrics: EngineMetrics,
    updates_applied: usize,
    incremental_updates: usize,
    bounded_updates: usize,
}

/// The program, query and bookkeeping of an evicted entry — everything that
/// stays in memory while the heavy state (fragments + partials) lives in
/// the spill file.
struct ColdState<P: IncrementalPie> {
    session: GrapeSession,
    program: P,
    query: P::Query,
    spill: PathBuf,
    book: QueryBookkeeping,
}

/// A registered query: resident (a live [`PreparedQuery`]) or evicted (a
/// [`ColdState`] pointing at its spill file).  Exactly one of the two is
/// `Some`.
struct ServedEntry<P: IncrementalPie> {
    prepared: Option<PreparedQuery<P>>,
    cold: Option<ColdState<P>>,
}

/// Reads a spill file back: the fragment set and the raw partial value
/// trees.  Trailing bytes after the declared records are rejected — the
/// concatenated per-fragment records must line up with the counts exactly.
fn read_spill(path: &Path) -> Result<(Vec<Fragment>, Vec<Value>), ServeError> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic != SPILL_MAGIC {
        return Err(ServeError::Snapshot(SnapshotError::Malformed(
            "bad magic header (not a grape query spill file)".to_string(),
        )));
    }
    let fragments = read_fragments(&mut r)?;
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    let k = u64::from_le_bytes(count) as usize;
    let mut values = Vec::with_capacity(k.min(1 << 16));
    for _ in 0..k {
        values.push(read_value_tree(&mut r)?);
    }
    ensure_fully_consumed(&mut r)?;
    Ok((fragments, values))
}

impl<P> ServedQuery for ServedEntry<P>
where
    P: IncrementalPie + 'static,
    P::Partial: Serialize + Deserialize,
{
    fn refresh(
        &mut self,
        applied: &DeltaApplication,
        delta: &GraphDelta,
    ) -> Result<UpdateReport, EngineError> {
        self.prepared
            .as_mut()
            .expect("refresh is only called on resident entries")
            .refresh_from(applied, delta)
    }

    fn evict(&mut self, path: &Path) -> Result<(), ServeError> {
        // Write the spill while the entry is still intact, so a failed
        // write leaves the query resident and consistent.
        {
            let p = self
                .prepared
                .as_ref()
                .expect("evict is only called on resident entries");
            if p.is_poisoned() {
                return Err(ServeError::Engine(EngineError::PoisonedHandle));
            }
            let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
            w.write_all(SPILL_MAGIC)?;
            write_fragments(p.fragmentation.fragments(), &mut w)?;
            w.write_all(&(p.partials.len() as u64).to_le_bytes())?;
            for partial in &p.partials {
                write_value_tree(&mut w, &partial.to_value())?;
            }
            w.flush()?;
        }
        let book = self.bookkeeping();
        self.demote(path, book);
        Ok(())
    }

    fn rehydrate(&mut self, at: &Fragmentation) -> Result<PathBuf, ServeError> {
        let spill = self
            .cold
            .as_ref()
            .expect("rehydrate is only called on evicted entries")
            .spill
            .clone();
        let (fragments, values) = read_spill(&spill)?;
        if fragments.len() != at.num_fragments() || values.len() != fragments.len() {
            return Err(ServeError::Snapshot(SnapshotError::Malformed(format!(
                "spill holds {} fragments / {} partials for a {}-fragment timeline",
                fragments.len(),
                values.len(),
                at.num_fragments()
            ))));
        }
        let partials: Vec<P::Partial> = values
            .iter()
            .map(P::Partial::from_value)
            .collect::<Result<_, _>>()
            .map_err(|e| ServeError::Snapshot(SnapshotError::Malformed(e.to_string())))?;
        // No re-partitioning: the vertex assignment is read off the
        // retained timeline's G_P, the fragments come from disk, and G_P is
        // re-derived from their border sets.
        let assignment: Vec<u32> = (0..at.gp().num_vertices() as VertexId)
            .map(|v| at.gp().owner(v) as u32)
            .collect();
        let fragmentation = rehydrate_fragmentation(
            fragments,
            assignment,
            at.source().clone(),
            at.strategy_name(),
        )?;
        let cold = self.cold.take().expect("checked above");
        self.prepared = Some(PreparedQuery {
            session: cold.session,
            program: cold.program,
            query: cold.query,
            fragmentation,
            partials,
            prepare_metrics: cold.book.prepare_metrics,
            last_metrics: cold.book.last_metrics,
            updates_applied: cold.book.updates_applied,
            incremental_updates: cold.book.incremental_updates,
            bounded_updates: cold.book.bounded_updates,
            poisoned: false,
        });
        Ok(cold.spill)
    }

    fn demote(&mut self, spill: &Path, book: QueryBookkeeping) {
        let prepared = self
            .prepared
            .take()
            .expect("demote is only called on resident entries");
        self.cold = Some(ColdState {
            session: prepared.session,
            program: prepared.program,
            query: prepared.query,
            spill: spill.to_path_buf(),
            book,
        });
    }

    fn bookkeeping(&self) -> QueryBookkeeping {
        if let Some(p) = &self.prepared {
            QueryBookkeeping {
                prepare_metrics: p.prepare_metrics.clone(),
                last_metrics: p.last_metrics.clone(),
                updates_applied: p.updates_applied,
                incremental_updates: p.incremental_updates,
                bounded_updates: p.bounded_updates,
            }
        } else {
            self.cold
                .as_ref()
                .expect("an entry is always resident or cold")
                .book
                .clone()
        }
    }

    fn is_evicted(&self) -> bool {
        self.cold.is_some()
    }

    fn is_poisoned(&self) -> bool {
        self.prepared.as_ref().is_some_and(|p| p.is_poisoned())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One registered query plus the timeline version its state corresponds to.
struct Slot {
    entry: Box<dyn ServedQuery>,
    version: usize,
}

/// A server multiplexing many prepared queries over one evolving graph.
/// See the [module docs](self) for the protocol.
pub struct GrapeServer {
    session: GrapeSession,
    /// `timeline[i]` is the fragmentation at version `base + i`; the last
    /// entry is current.  Older versions are retained only while an evicted
    /// query may still replay from them.
    base: usize,
    timeline: Vec<Fragmentation>,
    /// `steps[i]` takes version `base + i` to `base + i + 1`.
    steps: Vec<ServeStep>,
    slots: Vec<Slot>,
    spill_dir: PathBuf,
    /// Whether the server created `spill_dir` itself (the [`GrapeServer::new`]
    /// default) and may therefore delete it wholesale on drop.  A
    /// caller-provided directory is never removed.
    owns_spill_dir: bool,
    /// This server's process-unique token, stamped into every issued
    /// [`QueryHandle`].
    token: usize,
}

impl GrapeServer {
    /// A server over `fragmentation`, spilling evicted queries under a
    /// process-unique directory inside the system temp dir (removed when
    /// the server is dropped).
    pub fn new(session: GrapeSession, fragmentation: Fragmentation) -> Self {
        let mut server = GrapeServer::with_spill_dir(session, fragmentation, PathBuf::new());
        server.spill_dir = std::env::temp_dir().join(format!(
            "grape-server-{}-{}",
            std::process::id(),
            server.token
        ));
        server.owns_spill_dir = true;
        server
    }

    /// A server with an explicit spill directory (created lazily on the
    /// first eviction, left in place on drop).
    pub fn with_spill_dir(
        session: GrapeSession,
        fragmentation: Fragmentation,
        spill_dir: PathBuf,
    ) -> Self {
        GrapeServer {
            session,
            base: 0,
            timeline: vec![fragmentation],
            steps: Vec::new(),
            slots: Vec::new(),
            spill_dir,
            owns_spill_dir: false,
            token: SERVER_SEQ.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The current fragmentation (the newest timeline version).
    pub fn fragmentation(&self) -> &Fragmentation {
        self.timeline.last().expect("timeline is never empty")
    }

    /// The current timeline version — equals the number of deltas applied.
    pub fn version(&self) -> usize {
        self.base + self.timeline.len() - 1
    }

    /// How many deltas this server has applied (each exactly once,
    /// regardless of how many queries are registered).
    pub fn deltas_applied(&self) -> usize {
        self.version()
    }

    /// How many timeline versions are currently retained — `1` when every
    /// query is caught up, more only while evicted queries still need older
    /// versions for replay.
    pub fn retained_versions(&self) -> usize {
        self.timeline.len()
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently evicted queries.
    pub fn num_evicted(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_evicted()).count()
    }

    /// Registers a standing query: prepares it (PEval + IncEval to the
    /// fixpoint) against the **current** timeline version and retains the
    /// handle.  The partial-result type must round-trip through the serde
    /// value encoding so the query can be evicted.
    pub fn register<P>(&mut self, program: P, query: P::Query) -> Result<QueryHandle<P>, ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        let prepared = self
            .session
            .prepare(self.fragmentation().clone(), program, query)?;
        let id = self.slots.len();
        self.slots.push(Slot {
            entry: Box::new(ServedEntry {
                prepared: Some(prepared),
                cold: None,
            }),
            version: self.version(),
        });
        Ok(QueryHandle {
            server: self.token,
            id,
            _marker: PhantomData,
        })
    }

    /// Applies one `ΔG` to the shared fragmentation — **one**
    /// `Fragmentation::apply_delta` call, one rebuilt-fragment set — and
    /// refreshes every resident query from it.  Evicted queries are
    /// deferred (they replay on rehydration); queries poisoned by an
    /// earlier failed refresh are skipped.  A query whose monotone/bounded
    /// refresh errors is reported in [`ServeReport::refreshed`] and
    /// poisoned; a query whose **full** re-preparation errors stays
    /// consistent at its pre-delta version, and the server retains this
    /// step and replays it into the query before its next refresh or
    /// output.  The server and the other queries keep going either way.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<ServeReport, ServeError> {
        let current = self.version();
        let applied = self
            .fragmentation()
            .apply_delta(delta)
            .map_err(|e| ServeError::Delta(e.to_string()))?;
        let rebuilt: Vec<usize> = applied.affected.iter().map(|fd| fd.fragment).collect();
        let reused = applied.fragmentation.num_fragments() - rebuilt.len();
        let new_version = current + 1;

        let mut refreshed = Vec::new();
        let mut caught_up = Vec::new();
        let mut deferred = Vec::new();
        let mut poisoned = Vec::new();
        for id in 0..self.slots.len() {
            if self.slots[id].entry.is_evicted() {
                deferred.push(id);
                continue;
            }
            if self.slots[id].entry.is_poisoned() {
                // A poisoned query can never refresh again; advance its
                // version so it does not pin the timeline history.
                self.slots[id].version = new_version;
                poisoned.push(id);
                continue;
            }
            // A resident query can be *behind* after a failed full
            // re-preparation (the one refresh error that leaves the handle
            // consistent at an older version).  `refresh_from` requires the
            // query's fragmentation to be the one `applied` was derived
            // from, so replay the retained steps first.
            if self.slots[id].version < current {
                match self.replay_resident(id, current) {
                    Ok(_) => caught_up.push(id),
                    Err(e) => {
                        // Still behind (its version tracks the replayed
                        // prefix) or freshly poisoned — either way this
                        // delta cannot be applied to it yet.
                        if self.slots[id].entry.is_poisoned() {
                            self.slots[id].version = new_version;
                        }
                        refreshed.push(QueryRefresh {
                            query: id,
                            result: Err(e),
                        });
                        continue;
                    }
                }
            }
            let result = self.slots[id].entry.refresh(&applied, delta);
            if result.is_ok() || self.slots[id].entry.is_poisoned() {
                // Success, or quarantined forever: the query never replays
                // this step.
                self.slots[id].version = new_version;
            }
            // Otherwise the failed full re-preparation left the handle
            // consistent at `current`; keep its true version so the step
            // retained below replays into it later.
            refreshed.push(QueryRefresh { query: id, result });
        }

        if self.slots.iter().all(|s| s.version == new_version) {
            // Hot path — everyone is resident and caught up, so no query
            // can ever need this step for replay: advance the timeline in
            // place without retaining (or cloning) the delta.
            self.base = new_version;
            self.timeline.clear();
            self.timeline.push(applied.fragmentation);
            self.steps.clear();
        } else {
            // Someone — evicted, or resident but behind — may still replay
            // this step: retain it.
            self.steps.push(ServeStep {
                delta: delta.clone(),
                affected: applied.affected,
            });
            self.timeline.push(applied.fragmentation);
            self.prune();
        }
        Ok(ServeReport {
            version: new_version,
            rebuilt,
            reused,
            refreshed,
            caught_up,
            deferred,
            poisoned,
        })
    }

    /// Replays the retained steps from a **resident** query's version up to
    /// `upto`, advancing its version per successful step.  On an error the
    /// version keeps tracking the successfully replayed prefix (unless the
    /// failure poisoned the entry, which the caller handles).
    fn replay_resident(
        &mut self,
        id: usize,
        upto: usize,
    ) -> Result<Vec<UpdateReport>, EngineError> {
        let mut replayed = Vec::new();
        while self.slots[id].version < upto {
            if self.slots[id].entry.is_poisoned() {
                // A poisoned entry can never replay — and since poison
                // never pins history its version may even have fallen
                // below `base`, so surface the poison before touching the
                // step indices.
                return Err(EngineError::PoisonedHandle);
            }
            // The timeline already holds every post-delta fragmentation, so
            // no step runs apply_delta again.
            let i = self.slots[id].version - self.base;
            let applied = DeltaApplication {
                fragmentation: self.timeline[i + 1].clone(),
                affected: self.steps[i].affected.clone(),
            };
            let report = self.slots[id]
                .entry
                .refresh(&applied, &self.steps[i].delta)?;
            self.slots[id].version += 1;
            replayed.push(report);
        }
        Ok(replayed)
    }

    /// Spills a cold query's fragments and partials to a per-fragment
    /// binary snapshot file and frees its in-memory state.  The server
    /// retains the timeline version the query was last refreshed at, so a
    /// later rehydration replays only the deltas that arrived in between.
    /// Returns the spill path.
    pub fn evict<P>(&mut self, handle: &QueryHandle<P>) -> Result<PathBuf, ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        let slot = &mut self.slots[handle.id];
        if slot.entry.is_evicted() {
            return Err(ServeError::AlreadyEvicted(handle.id));
        }
        std::fs::create_dir_all(&self.spill_dir)?;
        let path = self.spill_dir.join(format!("query-{}.spill", handle.id));
        slot.entry.evict(&path)?;
        Ok(path)
    }

    /// Reloads an evicted query from its spill file — zero PEval calls,
    /// no re-partitioning — and replays the deltas applied while it was
    /// cold from the retained timeline (again without any `apply_delta`).
    /// The spill file is reclaimed only once the replay fully succeeds; on
    /// a replay error the entry falls back to the on-disk snapshot — still
    /// evicted at its spill version, retryable — instead of being left
    /// resident with half-replayed state.
    ///
    /// On a **resident** query this replays any steps the query is still
    /// behind on (after a failed full re-preparation) and is otherwise a
    /// no-op returning an empty report.
    pub fn rehydrate<P>(&mut self, handle: &QueryHandle<P>) -> Result<RehydrationReport, ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        let id = handle.id;
        let current = self.version();
        if !self.slots[id].entry.is_evicted() {
            // Resident — but possibly behind: catch it up so output()
            // never serves a stale version.
            let replayed = match self.replay_resident(id, current) {
                Ok(replayed) => replayed,
                Err(e) => {
                    if self.slots[id].entry.is_poisoned() {
                        // Freshly poisoned mid-replay: it can never catch
                        // up, so don't let it pin history (mirrors apply()).
                        self.slots[id].version = current;
                    }
                    return Err(ServeError::Engine(e));
                }
            };
            if !replayed.is_empty() {
                self.prune();
            }
            return Ok(RehydrationReport {
                query: id,
                replayed,
            });
        }
        let at = self.slots[id].version;
        // Captured while still cold: the counters the snapshot corresponds
        // to, in case a failed replay has to fall back to it.
        let book = self.slots[id].entry.bookkeeping();
        let spill = {
            let frozen = &self.timeline[at - self.base];
            self.slots[id].entry.rehydrate(frozen)?
        };
        match self.replay_resident(id, current) {
            Ok(replayed) => {
                // Only now is the snapshot no longer a needed recovery
                // point.
                let _ = std::fs::remove_file(&spill);
                self.prune();
                Ok(RehydrationReport {
                    query: id,
                    replayed,
                })
            }
            Err(e) => {
                // The in-memory state is half-replayed or poisoned; the
                // on-disk snapshot is the valid recovery point, so fall
                // back to it — counters included, so a retry that replays
                // the whole pending stream never double-counts the prefix
                // that succeeded this time.
                self.slots[id].entry.demote(&spill, book);
                self.slots[id].version = at;
                Err(ServeError::Engine(e))
            }
        }
    }

    /// Assembles the query's current answer, lazily rehydrating it first if
    /// it was evicted.
    pub fn output<P>(&mut self, handle: &QueryHandle<P>) -> Result<P::Output, ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.rehydrate(handle)?;
        let entry = self.entry_ref::<P>(handle)?;
        entry
            .prepared
            .as_ref()
            .expect("rehydrate left the entry resident")
            .try_output()
            .map_err(ServeError::Engine)
    }

    /// Borrow of the resident [`PreparedQuery`] behind a handle —
    /// `Ok(None)` while the query is evicted, [`ServeError::UnknownHandle`]
    /// when the handle was not issued by this server (or its query type
    /// does not match), so misuse surfaces instead of aliasing the evicted
    /// case.  Useful for metrics and tests (e.g. pinning that all handles
    /// share one fragment storage).
    pub fn prepared<P>(
        &self,
        handle: &QueryHandle<P>,
    ) -> Result<Option<&PreparedQuery<P>>, ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        Ok(self.entry_ref::<P>(handle)?.prepared.as_ref())
    }

    /// Whether the query behind `handle` is currently evicted.
    pub fn is_evicted<P>(&self, handle: &QueryHandle<P>) -> Result<bool, ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        Ok(self.slots[handle.id].entry.is_evicted())
    }

    fn check_handle<P>(&self, handle: &QueryHandle<P>) -> Result<(), ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        if handle.server != self.token {
            return Err(ServeError::UnknownHandle(handle.id));
        }
        let slot = self
            .slots
            .get(handle.id)
            .ok_or(ServeError::UnknownHandle(handle.id))?;
        if !slot.entry.as_any().is::<ServedEntry<P>>() {
            return Err(ServeError::UnknownHandle(handle.id));
        }
        Ok(())
    }

    fn entry_ref<P>(&self, handle: &QueryHandle<P>) -> Result<&ServedEntry<P>, ServeError>
    where
        P: IncrementalPie + 'static,
        P::Partial: Serialize + Deserialize,
    {
        self.check_handle::<P>(handle)?;
        self.slots
            .get(handle.id)
            .and_then(|s| s.entry.as_any().downcast_ref::<ServedEntry<P>>())
            .ok_or(ServeError::UnknownHandle(handle.id))
    }

    /// Drops timeline versions no query can need anymore: everything older
    /// than the oldest version still needed for replay — by an evicted
    /// query, or by a resident one left behind by a failed full
    /// re-preparation.  Poisoned queries never replay and are ignored.
    fn prune(&mut self) {
        let needed = self
            .slots
            .iter()
            .filter(|s| !s.entry.is_poisoned())
            .map(|s| s.version)
            .min()
            .unwrap_or_else(|| self.version());
        if needed > self.base {
            let k = needed - self.base;
            self.timeline.drain(..k);
            self.steps.drain(..k);
            self.base = needed;
        }
    }
}

impl Drop for GrapeServer {
    fn drop(&mut self) {
        // Reclaim spill files of queries still evicted at shutdown — but
        // only from the directory this server created itself; a
        // caller-provided spill directory is never touched.
        if self.owns_spill_dir {
            let _ = std::fs::remove_dir_all(&self.spill_dir);
        }
    }
}

impl std::fmt::Debug for GrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrapeServer")
            .field("version", &self.version())
            .field("queries", &self.slots.len())
            .field("evicted", &self.num_evicted())
            .field("retained_versions", &self.timeline.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineMode;
    use crate::prepared::RefreshKind;
    use crate::test_support::{
        path_graph, session, DivergingOnUpdate, MinForward, TrippablePrepare,
    };
    use grape_partition::edge_cut::RangeEdgeCut;
    use grape_partition::strategy::PartitionStrategy;

    fn server_with(
        n_queries: usize,
        mode: EngineMode,
    ) -> (GrapeServer, Vec<QueryHandle<MinForward>>) {
        let g = path_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let mut server = GrapeServer::new(session(mode), frag);
        let handles = (0..n_queries)
            .map(|_| server.register(MinForward, ()).unwrap())
            .collect();
        (server, handles)
    }

    #[test]
    fn one_apply_per_delta_is_shared_by_every_query() {
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let (mut server, handles) = server_with(3, mode);
            assert_eq!(server.num_queries(), 3);

            // A monotone insert, then a bounded deletion.
            let deltas = [
                GraphDelta::new().add_edge(0, 2),
                GraphDelta::new().remove_edge(5, 6),
            ];
            for (d, delta) in deltas.iter().enumerate() {
                let report = server.apply(delta).unwrap();
                assert_eq!(report.version, d + 1, "{mode:?}");
                assert_eq!(report.refreshed.len(), 3, "{mode:?}");
                // The single delta application's rebuilt set IS every
                // query's rebuilt set.
                for qr in &report.refreshed {
                    let ur = qr.result.as_ref().unwrap();
                    assert_eq!(ur.rebuilt, report.rebuilt, "{mode:?}");
                    assert_eq!(ur.reused, report.reused, "{mode:?}");
                }
            }
            assert_eq!(server.deltas_applied(), 2);
            assert_eq!(server.retained_versions(), 1, "nothing evicted: pruned");

            // Every handle shares the server's (single) fragment storage.
            for h in &handles {
                let prepared = server.prepared(h).unwrap().unwrap();
                for i in 0..server.fragmentation().num_fragments() {
                    assert!(
                        server
                            .fragmentation()
                            .shares_fragment_storage(prepared.fragmentation(), i),
                        "query {} fragment {i} was copied ({mode:?})",
                        h.id()
                    );
                }
            }

            // And each answer equals a from-scratch recompute.
            let recompute = session(mode)
                .run(server.fragmentation(), &MinForward, &())
                .unwrap();
            for h in handles {
                assert_eq!(server.output(&h).unwrap(), recompute.output, "{mode:?}");
            }
        }
    }

    #[test]
    fn evict_rehydrate_round_trip_is_exact_and_peval_free() {
        let (mut server, handles) = server_with(2, EngineMode::Sync);
        let (kept, cold) = (handles[0], handles[1]);
        server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();

        let spill = server.evict(&cold).unwrap();
        assert!(spill.exists());
        assert!(server.is_evicted(&cold).unwrap());
        assert!(
            server.prepared(&cold).unwrap().is_none(),
            "partials were released"
        );

        // Rehydration reloads fragments+partials from the snapshot file:
        // no PEval, no re-partitioning, answers identical to the handle
        // that never left memory.
        let report = server.rehydrate(&cold).unwrap();
        assert_eq!(report.replayed.len(), 0);
        assert_eq!(report.peval_calls(), 0);
        assert!(!spill.exists(), "spill is reclaimed after rehydration");
        assert_eq!(server.output(&cold).unwrap(), server.output(&kept).unwrap());
    }

    #[test]
    fn deltas_arriving_while_cold_are_replayed_on_rehydration() {
        let (mut server, handles) = server_with(2, EngineMode::Sync);
        let (kept, cold) = (handles[0], handles[1]);

        server.evict(&cold).unwrap();
        let r1 = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r1.deferred, vec![cold.id()]);
        assert_eq!(r1.refreshed.len(), 1, "only the resident query refreshed");
        let r2 = server.apply(&GraphDelta::new().add_edge(20, 21)).unwrap();
        assert_eq!(r2.deferred, vec![cold.id()]);
        assert!(
            server.retained_versions() > 1,
            "history retained for the cold query"
        );

        // output() lazily rehydrates and replays both deltas — still zero
        // PEval calls, because the pending stream is monotone.
        let report = server.rehydrate(&cold).unwrap();
        assert_eq!(report.replayed.len(), 2);
        assert_eq!(report.peval_calls(), 0);
        assert_eq!(
            report.replayed[0].kind,
            RefreshKind::Monotone,
            "replay takes the same decision table"
        );
        assert_eq!(server.output(&cold).unwrap(), server.output(&kept).unwrap());
        assert_eq!(
            server.retained_versions(),
            1,
            "history pruned once everyone caught up"
        );
    }

    #[test]
    fn eviction_bookkeeping_rejects_misuse() {
        let (mut server, handles) = server_with(1, EngineMode::Sync);
        let h = handles[0];
        server.evict(&h).unwrap();
        assert!(matches!(
            server.evict(&h).unwrap_err(),
            ServeError::AlreadyEvicted(_)
        ));
        // A handle from a DIFFERENT server is rejected even when the other
        // server holds a same-typed query under the same id.
        let (mut other, other_handles) = server_with(1, EngineMode::Sync);
        assert_eq!(h.id(), other_handles[0].id(), "same id, different server");
        assert!(matches!(
            other.output(&h).unwrap_err(),
            ServeError::UnknownHandle(_)
        ));
        // prepared() surfaces the foreign handle instead of aliasing it to
        // the evicted case's None.
        assert!(matches!(
            other.prepared(&h),
            Err(ServeError::UnknownHandle(_))
        ));
        assert!(other.output(&other_handles[0]).is_ok());
    }

    #[test]
    fn dropping_a_server_reclaims_its_default_spill_dir() {
        let (mut server, handles) = server_with(1, EngineMode::Sync);
        let spill = server.evict(&handles[0]).unwrap();
        let dir = spill.parent().unwrap().to_path_buf();
        assert!(dir.exists());
        drop(server);
        assert!(!dir.exists(), "default spill dir is removed on drop");
    }

    #[test]
    fn corrupted_spill_files_are_rejected_not_half_loaded() {
        let (mut server, handles) = server_with(1, EngineMode::Sync);
        let h = handles[0];
        let spill = server.evict(&h).unwrap();
        // Concatenated per-fragment records must line up exactly: a
        // trailing byte is corruption, not slack.
        let mut bytes = std::fs::read(&spill).unwrap();
        bytes.push(0x55);
        std::fs::write(&spill, bytes).unwrap();
        let err = server.rehydrate(&h).unwrap_err();
        assert!(matches!(err, ServeError::Snapshot(_)), "{err}");
        // The entry stays evicted (and retryable) rather than half-loaded.
        assert!(server.is_evicted(&h).unwrap());
    }

    /// Regression for the version-desync on a failed full re-preparation:
    /// the handle stays consistent at the pre-delta fragmentation, so the
    /// server must keep it on its old version and replay the retained
    /// steps later — never hand it a `DeltaApplication` derived from a
    /// fragmentation it does not hold (silent garbage), and never serve a
    /// stale answer as if it were current.
    #[test]
    fn a_failed_full_repreparation_stays_behind_and_catches_up() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let healthy = server.register(MinForward, ()).unwrap();
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();
        let out_v0 = server.output(&flaky).unwrap();

        // Every delta is non-monotone for the flaky program and its damage
        // covers the whole ring: full re-preparation — which diverges while
        // the program is tripped, WITHOUT poisoning the handle.
        flaky_prog.trip();
        let r1 = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        let by_id = |r: &ServeReport, id: usize| {
            r.refreshed
                .iter()
                .find(|q| q.query == id)
                .unwrap()
                .result
                .clone()
        };
        assert!(by_id(&r1, healthy.id()).is_ok());
        assert!(by_id(&r1, flaky.id()).is_err());
        assert_eq!(server.version(), 1, "the timeline itself advanced");
        assert!(
            server.retained_versions() > 1,
            "history retained for the behind query"
        );

        // While still tripped, output() replays (and fails loudly) instead
        // of serving the stale version-0 answer as current.
        assert!(matches!(
            server.output(&flaky).unwrap_err(),
            ServeError::Engine(EngineError::DidNotConverge { .. })
        ));

        // Once healed, the next apply first replays the missed step, then
        // refreshes with the new delta — outputs equal a recompute.
        flaky_prog.heal();
        let r2 = server.apply(&GraphDelta::new().add_edge(1, 3)).unwrap();
        assert_eq!(r2.caught_up, vec![flaky.id()]);
        assert!(by_id(&r2, flaky.id()).is_ok());
        assert!(r2.poisoned.is_empty(), "a behind query is not poisoned");
        assert_eq!(server.retained_versions(), 1, "caught up: history pruned");

        let recompute = s
            .run(server.fragmentation(), &flaky_prog, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&flaky).unwrap(), recompute);
        assert_ne!(
            server.output(&flaky).unwrap(),
            out_v0,
            "the replayed refreshes really moved the answer"
        );
        let recompute = s
            .run(server.fragmentation(), &MinForward, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&healthy).unwrap(), recompute);
    }

    /// Regression for the same desync via rehydrate(): a replay failure
    /// after the spill reload must not leave the entry resident,
    /// unpoisoned and behind with its spill already deleted — it falls
    /// back to the on-disk snapshot (still evicted, retryable) and the
    /// spill file survives until a replay fully succeeds.
    #[test]
    fn a_failed_replay_falls_back_to_the_spill_file() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let _healthy = server.register(MinForward, ()).unwrap();
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();

        let spill = server.evict(&flaky).unwrap();
        flaky_prog.trip();
        let r = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r.deferred, vec![flaky.id()]);

        // The reload succeeds, the replayed full re-preparation diverges:
        // back to the snapshot, spill intact, history still retained.
        let err = server.rehydrate(&flaky).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Engine(EngineError::DidNotConverge { .. })
        ));
        assert!(server.is_evicted(&flaky).unwrap());
        assert!(spill.exists(), "spill survives until a replay succeeds");
        assert!(server.retained_versions() > 1);

        // Retry after healing: replay lands, spill reclaimed, answer equals
        // a recompute on the current graph.
        flaky_prog.heal();
        let report = server.rehydrate(&flaky).unwrap();
        assert_eq!(report.replayed.len(), 1);
        assert!(!spill.exists(), "spill reclaimed after a successful replay");
        assert_eq!(server.retained_versions(), 1);
        let recompute = s
            .run(server.fragmentation(), &flaky_prog, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&flaky).unwrap(), recompute);
    }

    /// A failed replay falls back to the snapshot *counters included*: the
    /// retry replays the whole pending stream from the snapshot, so the
    /// prefix that succeeded on the first attempt must not be counted
    /// twice.
    #[test]
    fn a_failed_replay_retry_does_not_double_count_the_replayed_prefix() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();

        // Two deltas arrive while cold: a no-op (always replays fine) and
        // an insert whose full re-preparation diverges while tripped.
        server.evict(&flaky).unwrap();
        server.apply(&GraphDelta::new()).unwrap();
        server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();

        // First attempt: step 1 lands, step 2 fails → back to the snapshot.
        flaky_prog.trip();
        server.rehydrate(&flaky).unwrap_err();
        assert!(server.is_evicted(&flaky).unwrap());

        // Retry replays BOTH steps again; the first attempt's successful
        // prefix was rolled back with the state, so nothing double-counts.
        flaky_prog.heal();
        let report = server.rehydrate(&flaky).unwrap();
        assert_eq!(report.replayed.len(), 2);
        let p = server.prepared(&flaky).unwrap().unwrap();
        assert_eq!(p.updates_applied(), 2, "two deltas were ever absorbed");
        assert_eq!(p.incremental_updates(), 1, "the no-op counted once");
    }

    /// A query can be poisoned *while behind*: it falls behind on a failed
    /// full re-preparation, and a later catch-up replay fails on the
    /// monotone/bounded (partial-consuming) path.  Its version must not be
    /// allowed to fall below the pruned timeline base — every later access
    /// must surface `PoisonedHandle`, never a panicking index underflow —
    /// and the dead query must not pin the retained history.
    #[test]
    fn poisoned_mid_replay_surfaces_as_an_error_and_never_pins_history() {
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let healthy = server.register(MinForward, ()).unwrap();
        let flaky_prog = TrippablePrepare::new();
        let flaky = server.register(flaky_prog.clone(), ()).unwrap();

        // Fall behind: the insert is non-monotone for the tripped program,
        // its full re-preparation diverges, the handle stays at version 0.
        flaky_prog.trip();
        server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert!(server.retained_versions() > 1);

        // Replaying that insert now takes the (always-diverging) monotone
        // path: the catch-up inside output() poisons the handle mid-replay.
        flaky_prog.allow_monotone_inserts();
        assert!(matches!(
            server.output(&flaky).unwrap_err(),
            ServeError::Engine(EngineError::DidNotConverge { .. })
        ));

        // Another query's round trip prunes the history the dead query no
        // longer needs...
        server.evict(&healthy).unwrap();
        server.rehydrate(&healthy).unwrap();
        assert_eq!(server.retained_versions(), 1, "poison does not pin");

        // ...and the poisoned query keeps surfacing as an error — not a
        // version-arithmetic panic — on every later access.
        assert!(matches!(
            server.output(&flaky).unwrap_err(),
            ServeError::Engine(EngineError::PoisonedHandle)
        ));
        let recompute = s
            .run(server.fragmentation(), &MinForward, &())
            .unwrap()
            .output;
        assert_eq!(server.output(&healthy).unwrap(), recompute);
    }

    #[test]
    fn a_poisoned_query_is_quarantined_and_the_rest_keep_serving() {
        // A ring, so the diverging program's escalation actually cycles.
        let g = crate::test_support::ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let s = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .max_supersteps(4)
            .build()
            .unwrap();
        let mut server = GrapeServer::new(s.clone(), frag);
        let healthy = server.register(MinForward, ()).unwrap();
        let doomed = server.register(DivergingOnUpdate, ()).unwrap();

        // The diverging query fails its refresh; the report carries the
        // error, the healthy query's refresh still lands.
        let r1 = server.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
        assert_eq!(r1.refreshed.len(), 2);
        let by_id = |id: usize| r1.refreshed.iter().find(|q| q.query == id).unwrap();
        assert!(by_id(healthy.id()).result.is_ok());
        assert!(by_id(doomed.id()).result.is_err());

        // Subsequent deltas skip the poisoned query explicitly.
        let r2 = server.apply(&GraphDelta::new().add_edge(1, 3)).unwrap();
        assert_eq!(r2.poisoned, vec![doomed.id()]);
        assert_eq!(r2.refreshed.len(), 1);
        assert!(matches!(
            server.output(&doomed).unwrap_err(),
            ServeError::Engine(EngineError::PoisonedHandle)
        ));
        let recompute = s.run(server.fragmentation(), &MinForward, &()).unwrap();
        assert_eq!(server.output(&healthy).unwrap(), recompute.output);
        assert_eq!(server.retained_versions(), 1, "poison does not pin history");
    }
}
