//! The GRAPE engine runtime: the simultaneous fixpoint computation of
//! Section 3.1, written against the pluggable [`crate::transport`] layer.
//!
//! Given a fragmentation `F = (F_1, …, F_m)`, a PIE program and a query `Q`,
//! the engine
//!
//! 1. runs `PEval` on every fragment in parallel,
//! 2. routes the changed update parameters via the fragmentation graph `G_P`
//!    and hands them to the transport, which resolves conflicts with
//!    `aggregateMsg` and ships only *changed* values (the coordinator's
//!    message grouping of Section 3.2(3)),
//! 3. iterates `IncEval` on fragments with pending messages until no more
//!    updates can be made (the fixpoint), and
//! 4. calls `Assemble` on the partial results.
//!
//! Two runtimes share that skeleton:
//!
//! * **Superstep loop** ([`EngineMode::Sync`]) — BSP: all active fragments
//!   evaluate, then the transport flushes at a global barrier.  This is the
//!   model analysed in the paper, including superstep-aligned checkpointing
//!   and failure recovery.
//! * **Streaming loop** ([`EngineMode::Async`]) — no global barrier:
//!   fragments are independent tasks on their owning worker, draining their
//!   mailboxes to quiescence.  The superstep metric then reports the depth
//!   of an equivalent BSP schedule of the same deliveries — because fresher
//!   values arrive without waiting for a barrier, this is no larger (and on
//!   high-diameter workloads smaller) than the synchronous superstep count.
//!
//! Both runtimes root a run through a per-fragment **PEval mask**
//! (`RunCtx::peval`):
//!
//! * a full run (`prepare_parts`) masks every fragment — the classic
//!   PEval-everywhere superstep 0;
//! * an incremental refresh (`refresh_parts`) retains the partial results
//!   of an earlier run and pre-loads `ΔG`-derived seed messages: the mask
//!   is **empty** for a monotone delta (the paper's "queries under
//!   updates" protocol of Section 3.4 — `Q(G ⊕ ΔG)` from `Q(G)` without a
//!   single PEval call) and equals the **damage frontier** for a bounded
//!   non-monotone refresh (PEval re-roots only the stale fragments).
//!
//! Physical workers are OS threads; fragments are virtual workers mapped
//! onto physical workers by the [`crate::load_balance::LoadBalancer`].
//! Entry points: [`crate::session::GrapeSession::run`] (one-shot) and
//! [`crate::session::GrapeSession::prepare`] →
//! [`crate::prepared::PreparedQuery`] (prepare → answer → update).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use grape_partition::fragment::{Fragment, Fragmentation};
use grape_partition::fragmentation_graph::{BorderScope, FragmentationGraph};

use crate::config::{EngineConfig, EngineMode};
use crate::host::{InProcessHost, ProcessHost, WorkerHost};
use crate::load_balance::LoadBalancer;
use crate::metrics::{EngineMetrics, SuperstepMetrics};
use crate::pie::{KeyVertex, PieProgram};
use crate::transport::{
    BarrierTransport, ChannelTransport, MessageOps, ProcessTransport, Transport, TransportSnapshot,
    TransportSpec,
};

/// Errors produced by an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The fragmentation contains no fragments.
    NoFragments,
    /// The fixpoint was not reached within `max_supersteps` — the program
    /// most likely violates the monotonic condition of the Assurance Theorem.
    DidNotConverge {
        /// The configured superstep limit that was hit.
        max_supersteps: usize,
    },
    /// The session/engine configuration is contradictory (e.g. the
    /// barrier-free mode with a barrier transport).
    InvalidConfig(String),
    /// A graph delta could not be applied to the prepared fragmentation
    /// (missing edge/vertex, vertex-cut partition, …).
    Delta(String),
    /// The prepared handle was poisoned by an earlier failed refresh: its
    /// retained partials were consumed or half-rebased when the engine
    /// errored, so its state no longer corresponds to any graph version.
    /// Re-`prepare` (or re-register with the server) before trusting it.
    PoisonedHandle,
    /// A worker subprocess failed mid-run (died, closed its pipe, or
    /// answered with a protocol error).  The run is aborted — no partial
    /// answer is served — and the host reaps every remaining subprocess.
    Worker(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoFragments => write!(f, "fragmentation has no fragments"),
            EngineError::DidNotConverge { max_supersteps } => write!(
                f,
                "no fixpoint after {max_supersteps} supersteps; \
                 the PIE program is probably not monotonic"
            ),
            EngineError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            EngineError::Delta(reason) => write!(f, "cannot apply graph delta: {reason}"),
            EngineError::PoisonedHandle => write!(
                f,
                "prepared query handle is poisoned by an earlier failed \
                 update; re-prepare before reading its output"
            ),
            EngineError::Worker(reason) => {
                write!(f, "worker subprocess failed: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of an engine run: the assembled output plus run metrics.
#[derive(Debug, Clone)]
pub struct RunResult<O> {
    /// The assembled answer `Q(G)`.
    pub output: O,
    /// Metrics of the run.
    pub metrics: EngineMetrics,
}

/// Borrowed per-run state shared by both runtimes.
///
/// Deliberately free of fragments, query and program: those live behind the
/// [`WorkerHost`] so the runtimes stay location-transparent — the same loop
/// drives in-process and subprocess workers.
struct RunCtx<'r> {
    config: &'r EngineConfig,
    num_fragments: usize,
    assignment: &'r [Vec<usize>],
    gp: &'r FragmentationGraph,
    scope: BorderScope,
    /// Which fragments run PEval in the rooting step: all of them for a
    /// full run, the *damage frontier* for a bounded refresh, none for a
    /// monotone IncEval-only refresh.
    peval: &'r [bool],
}

/// Routes one evaluation's updates through `G_P` and ships them, batched per
/// destination, tagged with the sender's logical step.
fn route_and_send<K: KeyVertex + Clone, V: Clone, T: Transport<K, V> + ?Sized>(
    transport: &T,
    gp: &FragmentationGraph,
    scope: BorderScope,
    from: usize,
    step: usize,
    updates: Vec<(K, V)>,
) {
    route_and_send_to(transport, gp, scope, from, step, updates, None);
}

/// [`route_and_send`] with an optional destination filter: `Some(mask)`
/// drops every destination whose mask entry is `false` (used by the bounded
/// refresh to deliver reseeded border values to damaged fragments only).
#[allow(clippy::too_many_arguments)]
fn route_and_send_to<K: KeyVertex + Clone, V: Clone, T: Transport<K, V> + ?Sized>(
    transport: &T,
    gp: &FragmentationGraph,
    scope: BorderScope,
    from: usize,
    step: usize,
    updates: Vec<(K, V)>,
    restrict_to: Option<&[bool]>,
) {
    if updates.is_empty() {
        return;
    }
    let mut per_dest: HashMap<usize, Vec<(K, V)>> = HashMap::new();
    for (key, value) in updates {
        for dest in gp.route(key.vertex(), from, scope) {
            if restrict_to.is_some_and(|mask| !mask[dest]) {
                continue;
            }
            per_dest
                .entry(dest)
                .or_default()
                .push((key.clone(), value.clone()));
        }
    }
    for (dest, batch) in per_dest {
        transport.send_batch(from, dest, step, batch);
    }
}

/// Which evaluation roots a run: a fresh PEval pass, or retained partials
/// plus pre-seeded mailboxes (IncEval only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// PEval roots every fragment in superstep 0, then IncEval to fixpoint.
    Full,
    /// Partials are retained from an earlier run and the transport has been
    /// pre-seeded with `ΔG`-derived messages.  `RunCtx::peval` selects the
    /// fragments PEval re-roots in superstep 0 (none for a monotone
    /// IncEval-only refresh, the damage frontier for a bounded refresh);
    /// everything else continues from its retained partial.
    Incremental,
}

/// Validates a (mode, transport, fault-tolerance) policy combination.
///
/// Called by [`crate::session::GrapeSessionBuilder::build`] (fail fast) and
/// again by the engine entry points, so configurations replayed through
/// [`crate::session::GrapeSessionBuilder::config`] get the same checks.
pub(crate) fn validate_policies(
    config: &EngineConfig,
    spec: TransportSpec,
) -> Result<(), EngineError> {
    if config.mode == EngineMode::Async {
        if !spec.streaming_capable() {
            return Err(EngineError::InvalidConfig(
                "EngineMode::Async needs a streaming transport; \
                 use TransportSpec::Channel or TransportSpec::Process"
                    .to_string(),
            ));
        }
        if config.checkpoint_every.is_some() || !config.injected_failures.is_empty() {
            return Err(EngineError::InvalidConfig(
                "checkpointing and failure injection are superstep-aligned; \
                 use EngineMode::Sync"
                    .to_string(),
            ));
        }
    }
    // Checkpoints need a snapshot-capable transport; a streaming transport
    // would silently degrade recovery to restart-from-scratch.  Each spec
    // declares its own capability — no `if spec ==` chain to grow.
    if config.checkpoint_every.is_some() && !spec.supports_checkpoints() {
        return Err(EngineError::InvalidConfig(format!(
            "checkpointing needs a snapshot-capable transport and \
             TransportSpec::{} cannot snapshot; use TransportSpec::Barrier \
             or TransportSpec::Process",
            spec.name()
        )));
    }
    Ok(())
}

/// Runs a PIE program to its fixpoint and assembles the answer.  This is the
/// one-shot entry point behind [`crate::session::GrapeSession::run`] — a
/// full preparation whose partial results are assembled and then dropped.
pub(crate) fn execute<P: PieProgram>(
    config: &EngineConfig,
    balancer: &LoadBalancer,
    spec: TransportSpec,
    fragmentation: &Fragmentation,
    program: &P,
    query: &P::Query,
) -> Result<RunResult<P::Output>, EngineError> {
    let total_start = Instant::now();
    let (partials, mut metrics) =
        prepare_parts(config, balancer, spec, fragmentation, program, query)?;
    let output = program.assemble(query, partials);
    metrics.total_time = total_start.elapsed();
    Ok(RunResult { output, metrics })
}

/// The *prepare* phase: runs PEval on every fragment and iterates IncEval to
/// the fixpoint, returning the per-fragment partial results `Q(F_i)` without
/// assembling them.  [`crate::prepared::PreparedQuery`] retains these
/// partials so later [`refresh_parts`] calls can skip PEval entirely.
pub(crate) fn prepare_parts<P: PieProgram>(
    config: &EngineConfig,
    balancer: &LoadBalancer,
    spec: TransportSpec,
    fragmentation: &Fragmentation,
    program: &P,
    query: &P::Query,
) -> Result<(Vec<P::Partial>, EngineMetrics), EngineError> {
    let m = fragmentation.num_fragments();
    if m == 0 {
        return Err(EngineError::NoFragments);
    }
    validate_policies(config, spec)?;

    let total_start = Instant::now();
    let mut metrics = EngineMetrics {
        program: program.name().to_string(),
        workers: config.num_workers,
        fragments: m,
        transport: spec.name().to_string(),
        ..Default::default()
    };

    // Optional d-hop fragment expansion (SubIso).  The shipped
    // vertices/edges are counted as communication, mirroring the paper's
    // "message M_i … including all nodes and edges in C_i.x̄ from other
    // fragments".
    let hops = program.expansion_hops(query);
    let fragments: Vec<Arc<Fragment>> = if hops > 0 {
        let mut expanded = Vec::with_capacity(m);
        for i in 0..m {
            let (f, shipped_vertices, shipped_edges) = fragmentation.expand_fragment(i, hops);
            metrics.add_expansion(shipped_vertices * 24 + shipped_edges * 24);
            expanded.push(Arc::new(f));
        }
        expanded
    } else {
        fragmentation.fragments().to_vec()
    };

    // Map virtual workers (fragments) onto physical workers.
    let assignment = balancer.assign(fragmentation, config.num_workers);

    let aggregate = |k: &P::Key, a: P::Value, b: P::Value| program.aggregate(k, a, b);
    let key_size = |k: &P::Key| program.key_size(k);
    let value_size = |v: &P::Value| program.value_size(v);
    let ops = MessageOps {
        aggregate: &aggregate,
        key_size: &key_size,
        value_size: &value_size,
    };
    let peval = vec![true; m];
    let ctx = RunCtx {
        config,
        num_fragments: m,
        assignment: &assignment,
        gp: fragmentation.gp(),
        scope: program.scope(),
        peval: &peval,
    };

    let empty: Vec<Option<P::Partial>> = (0..m).map(|_| None).collect();
    let partials = match (config.mode, spec) {
        (EngineMode::Sync, TransportSpec::Barrier) => {
            let host = InProcessHost::new(program, query, &fragments, &aggregate, empty);
            superstep_loop(&ctx, &host, &BarrierTransport::new(m, ops), &mut metrics)?;
            host.into_partials()?
        }
        (EngineMode::Sync, TransportSpec::Channel) => {
            let host = InProcessHost::new(program, query, &fragments, &aggregate, empty);
            superstep_loop(&ctx, &host, &ChannelTransport::new(m, ops), &mut metrics)?;
            host.into_partials()?
        }
        (EngineMode::Async, TransportSpec::Barrier) => {
            unreachable!("validate_policies rejects Async over a barrier transport")
        }
        (EngineMode::Async, TransportSpec::Channel) => {
            let host = InProcessHost::new(program, query, &fragments, &aggregate, empty);
            streaming_loop(
                &ctx,
                &host,
                &ChannelTransport::new(m, ops),
                &mut metrics,
                Phase::Full,
            )?;
            host.into_partials()?
        }
        (mode, TransportSpec::Process { workers }) => {
            let host = ProcessHost::spawn(program, query, &fragments, None, workers)?;
            let pipe = host.pipe_counter();
            let run = match mode {
                EngineMode::Sync => {
                    superstep_loop(&ctx, &host, &ProcessTransport::new(m, ops), &mut metrics)
                }
                EngineMode::Async => streaming_loop(
                    &ctx,
                    &host,
                    &ProcessTransport::streaming(m, ops),
                    &mut metrics,
                    Phase::Full,
                ),
            };
            let partials = run.and_then(|()| host.into_partials());
            metrics.pipe_bytes = pipe.load(Ordering::Relaxed);
            partials?
        }
    };
    metrics.total_time = total_start.elapsed();
    Ok((partials, metrics))
}

/// One fragment's seed batch: the sender fragment and the changed update
/// parameters its rebase produced.
pub(crate) type SeedBatch<P> = (
    usize,
    Vec<(<P as PieProgram>::Key, <P as PieProgram>::Value)>,
);

/// What an incremental refresh starts from: the previous fixpoint's
/// per-fragment partials plus the `ΔG`-derived seed messages — a list of
/// `(sender fragment, changed update parameters)` that the engine routes
/// exactly like a normal evaluation's sends.
pub(crate) struct RefreshState<P: PieProgram> {
    /// Retained partial results, one per fragment.  The entries of damaged
    /// fragments (`repeval`) are placeholders: PEval overwrites them in the
    /// rooting step before anything reads them.
    pub partials: Vec<P::Partial>,
    /// Seed messages: the rebase step's changed update parameters (monotone
    /// refresh) or the undamaged neighbours' reseeded border segments
    /// (bounded refresh).
    pub seeds: Vec<SeedBatch<P>>,
    /// The damage frontier of a **bounded** refresh: fragments whose
    /// retained partials may be stale and are re-rooted with PEval in
    /// superstep 0.  Empty for the monotone IncEval-only refresh.  When
    /// non-empty, seed messages are delivered to damaged fragments only.
    pub repeval: Vec<usize>,
}

/// The *refresh* phase of a prepared query: given the retained state,
/// routes the seeds through `G_P`, re-roots the damage frontier with PEval
/// (none for a monotone delta), then iterates IncEval to the new fixpoint.
/// `EngineMetrics::peval_calls` equals `|repeval|` by construction — **0**
/// on the monotone path, pinned by the equivalence suites.
pub(crate) fn refresh_parts<P: PieProgram>(
    config: &EngineConfig,
    balancer: &LoadBalancer,
    spec: TransportSpec,
    fragmentation: &Fragmentation,
    program: &P,
    query: &P::Query,
    state: RefreshState<P>,
) -> Result<(Vec<P::Partial>, EngineMetrics), EngineError> {
    let RefreshState {
        partials,
        seeds,
        repeval,
    } = state;
    let m = fragmentation.num_fragments();
    if m == 0 {
        return Err(EngineError::NoFragments);
    }
    validate_policies(config, spec)?;
    if !config.injected_failures.is_empty() {
        return Err(EngineError::InvalidConfig(
            "failure injection is superstep-aligned to a PEval-rooted run; \
             it is not supported on the incremental refresh path"
                .to_string(),
        ));
    }
    if partials.len() != m {
        return Err(EngineError::InvalidConfig(format!(
            "retained {} partials for {} fragments",
            partials.len(),
            m
        )));
    }
    let mut peval = vec![false; m];
    for &i in &repeval {
        if i >= m {
            return Err(EngineError::InvalidConfig(format!(
                "damage frontier names fragment {i} of {m}"
            )));
        }
        peval[i] = true;
    }
    if program.expansion_hops(query) > 0 && repeval.is_empty() && !seeds.is_empty() {
        return Err(EngineError::InvalidConfig(
            "d-hop expansion programs cannot refresh from seed messages alone; \
             use the bounded refresh (damage frontier) or re-prepare"
                .to_string(),
        ));
    }

    let total_start = Instant::now();
    let mut metrics = EngineMetrics {
        program: program.name().to_string(),
        workers: config.num_workers,
        fragments: m,
        transport: spec.name().to_string(),
        incremental: true,
        ..Default::default()
    };

    // `d`-hop expansion (SubIso): only the damaged fragments are re-rooted,
    // so only they need their expanded incarnation — the bounded refresh
    // ships `|damaged|` neighborhoods instead of all `m`.
    let hops = program.expansion_hops(query);
    let fragments: Vec<Arc<Fragment>> = if hops > 0 {
        (0..m)
            .map(|i| {
                if peval[i] {
                    let (f, shipped_vertices, shipped_edges) =
                        fragmentation.expand_fragment(i, hops);
                    metrics.add_expansion(shipped_vertices * 24 + shipped_edges * 24);
                    Arc::new(f)
                } else {
                    fragmentation.fragments()[i].clone()
                }
            })
            .collect()
    } else {
        fragmentation.fragments().to_vec()
    };

    let assignment = balancer.assign(fragmentation, config.num_workers);
    let aggregate = |k: &P::Key, a: P::Value, b: P::Value| program.aggregate(k, a, b);
    let key_size = |k: &P::Key| program.key_size(k);
    let value_size = |v: &P::Value| program.value_size(v);
    let ops = MessageOps {
        aggregate: &aggregate,
        key_size: &key_size,
        value_size: &value_size,
    };
    let ctx = RunCtx {
        config,
        num_fragments: m,
        assignment: &assignment,
        gp: fragmentation.gp(),
        scope: program.scope(),
        peval: &peval,
    };

    // Seeds are routed at logical step 0 and published before the loop
    // starts, so the first IncEval round sees them like any other mail; the
    // published volume is accounted as `seed_messages` (separate from the
    // per-superstep flow, included in the run totals).  During a bounded
    // refresh, only the damaged fragments start from a fresh PEval with no
    // memory of their neighbours' values — everyone else already holds them
    // — so seed delivery is restricted to the damage frontier.
    fn seed<K: KeyVertex + Clone, V: Clone, T: Transport<K, V>>(
        transport: &T,
        gp: &FragmentationGraph,
        scope: BorderScope,
        seeds: Vec<(usize, Vec<(K, V)>)>,
        restrict_to: Option<&[bool]>,
        metrics: &mut EngineMetrics,
    ) {
        for (from, updates) in seeds {
            route_and_send_to(transport, gp, scope, from, 0, updates, restrict_to);
        }
        transport.flush();
        let s = transport.stats();
        metrics.seed_messages = s.messages;
        metrics.total_messages += s.messages;
        metrics.total_bytes += s.bytes;
    }
    let restrict_to = if repeval.is_empty() {
        None
    } else {
        Some(peval.as_slice())
    };

    let partials = match (config.mode, spec) {
        (EngineMode::Sync, TransportSpec::Barrier) => {
            let retained = partials.into_iter().map(Some).collect();
            let host = InProcessHost::new(program, query, &fragments, &aggregate, retained);
            let transport = BarrierTransport::new(m, ops);
            seed(
                &transport,
                ctx.gp,
                ctx.scope,
                seeds,
                restrict_to,
                &mut metrics,
            );
            superstep_loop(&ctx, &host, &transport, &mut metrics)?;
            host.into_partials()?
        }
        (EngineMode::Sync, TransportSpec::Channel) => {
            let retained = partials.into_iter().map(Some).collect();
            let host = InProcessHost::new(program, query, &fragments, &aggregate, retained);
            let transport = ChannelTransport::new(m, ops);
            seed(
                &transport,
                ctx.gp,
                ctx.scope,
                seeds,
                restrict_to,
                &mut metrics,
            );
            superstep_loop(&ctx, &host, &transport, &mut metrics)?;
            host.into_partials()?
        }
        (EngineMode::Async, TransportSpec::Barrier) => {
            unreachable!("validate_policies rejects Async over a barrier transport")
        }
        (EngineMode::Async, TransportSpec::Channel) => {
            let retained = partials.into_iter().map(Some).collect();
            let host = InProcessHost::new(program, query, &fragments, &aggregate, retained);
            let transport = ChannelTransport::new(m, ops);
            seed(
                &transport,
                ctx.gp,
                ctx.scope,
                seeds,
                restrict_to,
                &mut metrics,
            );
            streaming_loop(&ctx, &host, &transport, &mut metrics, Phase::Incremental)?;
            host.into_partials()?
        }
        (mode, TransportSpec::Process { workers }) => {
            let host = ProcessHost::spawn(program, query, &fragments, Some(&partials), workers)?;
            let pipe = host.pipe_counter();
            let run = match mode {
                EngineMode::Sync => {
                    let transport = ProcessTransport::new(m, ops);
                    seed(
                        &transport,
                        ctx.gp,
                        ctx.scope,
                        seeds,
                        restrict_to,
                        &mut metrics,
                    );
                    superstep_loop(&ctx, &host, &transport, &mut metrics)
                }
                EngineMode::Async => {
                    let transport = ProcessTransport::streaming(m, ops);
                    seed(
                        &transport,
                        ctx.gp,
                        ctx.scope,
                        seeds,
                        restrict_to,
                        &mut metrics,
                    );
                    streaming_loop(&ctx, &host, &transport, &mut metrics, Phase::Incremental)
                }
            };
            let collected = run.and_then(|()| host.into_partials());
            metrics.pipe_bytes = pipe.load(Ordering::Relaxed);
            collected?
        }
    };
    metrics.total_time = total_start.elapsed();
    Ok((partials, metrics))
}

/// The BSP runtime: supersteps separated by a global barrier at which the
/// transport publishes messages.  Supports checkpointing and the arbitrator
/// recovery protocol of Section 6.
///
/// The host arrives with empty partials for a full run and pre-populated
/// ones for an incremental refresh; `ctx.peval` selects the fragments PEval
/// roots in superstep 0 (their slots are overwritten before anything reads
/// them).  At the fixpoint the caller collects the partials with
/// [`WorkerHost::into_partials`].
fn superstep_loop<P: PieProgram, H: WorkerHost<P>, T: Transport<P::Key, P::Value>>(
    ctx: &RunCtx<'_>,
    host: &H,
    transport: &T,
    metrics: &mut EngineMetrics,
) -> Result<(), EngineError> {
    let m = ctx.num_fragments;
    let peval_count = AtomicUsize::new(0);
    let inceval_count = AtomicUsize::new(0);
    // Checkpoint = (next superstep, partials, mailboxes + delivered caches).
    #[allow(clippy::type_complexity)]
    let mut checkpoint: Option<(
        usize,
        Vec<Option<P::Partial>>,
        TransportSnapshot<P::Key, P::Value>,
    )> = None;
    let mut handled_failures = vec![false; ctx.config.injected_failures.len()];
    let mut superstep = 0usize;

    loop {
        if superstep >= ctx.config.max_supersteps {
            return Err(EngineError::DidNotConverge {
                max_supersteps: ctx.config.max_supersteps,
            });
        }

        // Failure injection + arbitrator recovery.
        let mut failed = false;
        for (idx, failure) in ctx.config.injected_failures.iter().enumerate() {
            if !handled_failures[idx] && failure.superstep == superstep && failure.fragment < m {
                handled_failures[idx] = true;
                failed = true;
                metrics.recovered_failures += 1;
            }
        }
        if failed {
            match &checkpoint {
                Some((step, saved_partials, saved_transport)) => {
                    superstep = *step;
                    host.restore_partials(saved_partials)?;
                    transport.restore(saved_transport);
                }
                None => {
                    // No checkpoint yet: restart the whole computation.
                    superstep = 0;
                    host.clear_partials()?;
                    transport.reset();
                }
            }
        }

        let step_start = Instant::now();
        // The rooting step: superstep 0 runs PEval on the fragments the
        // mask selects (all of them in a full run, the damage frontier in a
        // bounded refresh, none in a monotone refresh).
        let rooting = superstep == 0;

        // Decide which fragments are active this superstep.
        let active: Vec<bool> = (0..m)
            .map(|i| (rooting && ctx.peval[i]) || transport.has_pending(i))
            .collect();
        let active_count = active.iter().filter(|&&a| a).count();
        if active_count == 0 {
            break;
        }

        // Local evaluation (PEval in the rooting step, IncEval otherwise),
        // spread over the physical workers.  A host failure (e.g. a dead
        // worker subprocess) aborts the whole superstep: every thread bails
        // at its next fragment, the first error wins, and the run returns
        // it instead of flushing — no partial answer is ever served.
        let stats_before = transport.stats();
        let active_ref = &active;
        let peval_count_ref = &peval_count;
        let inceval_count_ref = &inceval_count;
        let abort = AtomicBool::new(false);
        let abort_ref = &abort;
        let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
        let first_error_ref = &first_error;
        std::thread::scope(|s| {
            for worker_fragments in ctx.assignment {
                let worker_fragments = worker_fragments.clone();
                s.spawn(move || {
                    for fi in worker_fragments {
                        if abort_ref.load(Ordering::Relaxed) {
                            return;
                        }
                        if !active_ref[fi] {
                            continue;
                        }
                        let evaluated = if rooting && ctx.peval[fi] {
                            host.peval(fi).inspect(|_| {
                                peval_count_ref.fetch_add(1, Ordering::Relaxed);
                            })
                        } else {
                            let drained = transport.drain(fi);
                            if drained.updates.is_empty() {
                                continue;
                            }
                            host.inc_eval(fi, &drained.updates).inspect(|_| {
                                inceval_count_ref.fetch_add(1, Ordering::Relaxed);
                            })
                        };
                        match evaluated {
                            Ok(updates) => {
                                route_and_send(transport, ctx.gp, ctx.scope, fi, superstep, updates)
                            }
                            Err(e) => {
                                let mut slot = first_error_ref.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                abort_ref.store(true, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }

        // Barrier: the transport publishes this superstep's messages.
        transport.flush();
        let stats_after = transport.stats();
        metrics.push_superstep(SuperstepMetrics {
            superstep,
            active_fragments: active_count,
            messages: stats_after.messages - stats_before.messages,
            bytes: stats_after.bytes - stats_before.bytes,
            duration: step_start.elapsed(),
        });
        metrics.eval_time += step_start.elapsed();

        // Checkpoint (only transports that can snapshot participate).
        if let Some(every) = ctx.config.checkpoint_every {
            if (superstep + 1).is_multiple_of(every) {
                if let Some(snap) = transport.snapshot() {
                    checkpoint = Some((superstep + 1, host.checkpoint_partials()?, snap));
                    metrics.checkpoints += 1;
                }
            }
        }

        superstep += 1;
        if transport.pending_mailboxes() == 0 {
            break; // fixpoint: no pending messages anywhere
        }
    }

    metrics.peval_calls += peval_count.into_inner();
    metrics.inceval_calls += inceval_count.into_inner();
    Ok(())
}

/// One evaluation in the streaming runtime, for the per-superstep metric
/// buckets.
struct EvalRecord {
    /// The fragment that was evaluated.
    fragment: usize,
    /// The evaluation's assigned logical round: 0 for PEval; for IncEval,
    /// the superstep an equivalent BSP schedule would have run it in (see
    /// the round assignment in [`streaming_loop`]).
    step: usize,
    consumed_messages: usize,
    consumed_bytes: usize,
    duration: Duration,
}

/// The barrier-free runtime ([`EngineMode::Async`]): every physical worker
/// owns its assigned fragments and keeps draining their mailboxes until the
/// whole computation is quiescent — no superstep barrier, no coordinator
/// round-trips.  Messages produced by any fragment are visible to their
/// destinations immediately.
fn streaming_loop<P: PieProgram, H: WorkerHost<P>, T: Transport<P::Key, P::Value>>(
    ctx: &RunCtx<'_>,
    host: &H,
    transport: &T,
    metrics: &mut EngineMetrics,
    phase: Phase,
) -> Result<(), EngineError> {
    let peval_count = AtomicUsize::new(0);
    let inceval_count = AtomicUsize::new(0);
    // Quiescence: the run is over when every PEval finished, no mailbox has
    // pending mail, and no worker is mid-evaluation (a worker is "busy"
    // from before it drains until after it ships its results, so mail can
    // never be in flight while all three conditions hold *at one instant*).
    // The three counters cannot be read in one instant, so exits are
    // seqlock-style: `activity` is bumped immediately *before* every busy
    // transition, and an exit is valid only if it did not move across the
    // whole observation — then no busy transition completed inside the
    // window, `busy` was constant 0 throughout, no send was in flight, and
    // the observed zeros really did overlap.
    // Only the mask-selected fragments have a PEval to wait for (all in the
    // full phase, the damage frontier in a bounded refresh, none in a
    // monotone refresh).
    let unstarted = AtomicUsize::new(ctx.peval.iter().filter(|&&p| p).count());
    let busy = AtomicUsize::new(0);
    let activity = AtomicUsize::new(0);
    let diverged = AtomicBool::new(false);
    // Host failures (a dead worker subprocess) abort the run: the failing
    // thread records the first error and raises `abort`, which every
    // worker's drain loop checks — so nobody spins on quiescence counters
    // that a dead peer can no longer move.
    let abort = AtomicBool::new(false);
    let first_error: Mutex<Option<EngineError>> = Mutex::new(None);
    let records: Mutex<Vec<EvalRecord>> = Mutex::new(Vec::new());

    {
        let abort_ref = &abort;
        let first_error_ref = &first_error;
        let unstarted_ref = &unstarted;
        let busy_ref = &busy;
        let activity_ref = &activity;
        let diverged_ref = &diverged;
        let records_ref = &records;
        let peval_count_ref = &peval_count;
        let inceval_count_ref = &inceval_count;
        std::thread::scope(|s| {
            for worker_fragments in ctx.assignment {
                let worker_fragments = worker_fragments.clone();
                s.spawn(move || {
                    let mut local: Vec<EvalRecord> = Vec::new();
                    // Per-fragment evaluation counters (this worker is the
                    // only one evaluating its fragments, so plain local
                    // counters suffice).  Each evaluation is also assigned a
                    // *logical round* — the superstep an equivalent BSP
                    // schedule would have run it in.  Two things bound that
                    // round from above: the fragment's own evaluation index
                    // (BSP evaluates a fragment at most once per round) and
                    // one past the newest information consumed (a message's
                    // sender round, carried as the transport step tag; BSP
                    // delivers a round-`r` message in round `r + 1`).  The
                    // assigned round is the min of the two, which keeps the
                    // metric stable against both piecemeal message arrival
                    // (which inflates evaluation counts) and chains of
                    // interim values (which inflate message depth).
                    let mut evals: HashMap<usize, usize> = HashMap::new();
                    // PEval for the mask-selected fragments this worker owns
                    // (all of its fragments in the full phase, the damaged
                    // ones in a bounded refresh, none in a monotone refresh
                    // — which starts straight from the retained partials and
                    // the pre-seeded mailboxes).  No global barrier
                    // afterwards: mail addressed to a fragment whose PEval
                    // has not run yet simply waits in its mailbox.
                    for &fi in &worker_fragments {
                        if !ctx.peval[fi] {
                            continue;
                        }
                        if abort_ref.load(Ordering::SeqCst) {
                            records_ref.lock().extend(local);
                            return;
                        }
                        let t0 = Instant::now();
                        let updates = match host.peval(fi) {
                            Ok(updates) => updates,
                            Err(e) => {
                                let mut slot = first_error_ref.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                abort_ref.store(true, Ordering::SeqCst);
                                records_ref.lock().extend(local);
                                return;
                            }
                        };
                        route_and_send(transport, ctx.gp, ctx.scope, fi, 0, updates);
                        unstarted_ref.fetch_sub(1, Ordering::SeqCst);
                        peval_count_ref.fetch_add(1, Ordering::Relaxed);
                        evals.insert(fi, 0);
                        local.push(EvalRecord {
                            fragment: fi,
                            step: 0,
                            consumed_messages: 0,
                            consumed_bytes: 0,
                            duration: t0.elapsed(),
                        });
                    }
                    // Drain to quiescence.
                    let mut idle_rounds = 0u32;
                    loop {
                        if diverged_ref.load(Ordering::SeqCst) || abort_ref.load(Ordering::SeqCst) {
                            break;
                        }
                        let mut progressed = false;
                        // Fast path for idle spins: the lock-free global
                        // pending count skips the per-mailbox locking when
                        // there is nothing anywhere.
                        let anything_pending = transport.pending_mailboxes() > 0;
                        for &fi in &worker_fragments {
                            if !anything_pending || !transport.has_pending(fi) {
                                continue;
                            }
                            // `activity` is always bumped BEFORE the busy
                            // transition it announces: an observer whose
                            // activity re-read is unchanged can then be sure
                            // no transition completed inside its window.
                            activity_ref.fetch_add(1, Ordering::SeqCst);
                            busy_ref.fetch_add(1, Ordering::SeqCst);
                            let drained = transport.drain(fi);
                            if drained.updates.is_empty() {
                                activity_ref.fetch_add(1, Ordering::SeqCst);
                                busy_ref.fetch_sub(1, Ordering::SeqCst);
                                continue;
                            }
                            // First evaluation of a fragment: round 1 in the
                            // full phase (its PEval was round 0), round 0 in
                            // the incremental phase (seeds carry step 0 and
                            // there is no PEval round).
                            let own = evals.get(&fi).map_or(
                                match phase {
                                    Phase::Full => 1,
                                    Phase::Incremental => 0,
                                },
                                |e| e + 1,
                            );
                            let step = own.min(drained.max_step + 1);
                            // Guard divergence on the *logical* round, not
                            // the raw evaluation count: piecemeal arrival
                            // legitimately inflates evaluation counts above
                            // the BSP superstep count, while the logical
                            // round still ratchets up without bound for a
                            // genuinely non-monotonic program (each message
                            // carries its sender's assigned round).
                            if step >= ctx.config.max_supersteps {
                                diverged_ref.store(true, Ordering::SeqCst);
                                activity_ref.fetch_add(1, Ordering::SeqCst);
                                busy_ref.fetch_sub(1, Ordering::SeqCst);
                                break;
                            }
                            evals.insert(fi, own);
                            let t0 = Instant::now();
                            let updates = match host.inc_eval(fi, &drained.updates) {
                                Ok(updates) => updates,
                                Err(e) => {
                                    let mut slot = first_error_ref.lock();
                                    if slot.is_none() {
                                        *slot = Some(e);
                                    }
                                    abort_ref.store(true, Ordering::SeqCst);
                                    activity_ref.fetch_add(1, Ordering::SeqCst);
                                    busy_ref.fetch_sub(1, Ordering::SeqCst);
                                    break;
                                }
                            };
                            route_and_send(transport, ctx.gp, ctx.scope, fi, step, updates);
                            activity_ref.fetch_add(1, Ordering::SeqCst);
                            busy_ref.fetch_sub(1, Ordering::SeqCst);
                            inceval_count_ref.fetch_add(1, Ordering::Relaxed);
                            local.push(EvalRecord {
                                fragment: fi,
                                step,
                                consumed_messages: drained.messages,
                                consumed_bytes: drained.bytes,
                                duration: t0.elapsed(),
                            });
                            progressed = true;
                        }
                        if progressed {
                            idle_rounds = 0;
                            continue;
                        }
                        // Seqlock-style exit: with `activity` unchanged
                        // across the whole observation, `busy` was constant
                        // (and read 0, so constant 0) — no evaluation was in
                        // flight, so no send could race the mailbox read and
                        // the observed zeros genuinely overlapped.
                        let observed_activity = activity_ref.load(Ordering::SeqCst);
                        if unstarted_ref.load(Ordering::SeqCst) == 0
                            && transport.pending_mailboxes() == 0
                            && busy_ref.load(Ordering::SeqCst) == 0
                            && activity_ref.load(Ordering::SeqCst) == observed_activity
                        {
                            break;
                        }
                        idle_rounds += 1;
                        if idle_rounds > 64 {
                            std::thread::sleep(Duration::from_micros(50));
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    records_ref.lock().extend(local);
                });
            }
        });
    }

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    if diverged.load(Ordering::SeqCst) {
        return Err(EngineError::DidNotConverge {
            max_supersteps: ctx.config.max_supersteps,
        });
    }

    // Bucket evaluations into logical supersteps by their assigned round:
    // the reported superstep count is the depth of an equivalent BSP
    // schedule of the same deliveries.  Messages consumed by an evaluation
    // in round `s` are attributed to the end of round `s - 1`, matching the
    // synchronous accounting; round-0 consumption only exists in the
    // incremental phase, where it is the injected seeds (accounted
    // separately as `seed_messages` by the caller).
    let records = records.into_inner();
    if records.is_empty() {
        // Incremental refresh with nothing to do: zero supersteps.
        metrics.peval_calls += peval_count.into_inner();
        metrics.inceval_calls += inceval_count.into_inner();
        return Ok(());
    }
    let depth = records.iter().map(|r| r.step).max().unwrap_or(0);
    let mut steps: Vec<SuperstepMetrics> = (0..=depth)
        .map(|s| SuperstepMetrics {
            superstep: s,
            ..Default::default()
        })
        .collect();
    // A fragment evaluated twice in one logical round (piecemeal arrival)
    // is still one active fragment of that round — count distinct
    // fragments, keeping `active_fragments ≤ m` as under BSP.
    let mut active_per_step: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); depth + 1];
    for r in &records {
        active_per_step[r.step].insert(r.fragment);
        steps[r.step].duration += r.duration;
        metrics.eval_time += r.duration;
        if r.step > 0 {
            steps[r.step - 1].messages += r.consumed_messages;
            steps[r.step - 1].bytes += r.consumed_bytes;
        }
    }
    for (s, active) in active_per_step.iter().enumerate() {
        steps[s].active_fragments = active.len();
    }
    for s in steps {
        metrics.push_superstep(s);
    }
    metrics.peval_calls += peval_count.into_inner();
    metrics.inceval_calls += inceval_count.into_inner();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pie::Messages;
    use crate::session::GrapeSession;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::VertexId;
    use grape_partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
    use grape_partition::fragmentation_graph::BorderScope;
    use grape_partition::strategy::PartitionStrategy;
    use std::collections::HashMap;

    /// A miniature PIE program used to exercise the engine without the
    /// algorithms crate: every vertex computes the minimum global vertex id
    /// reachable *backwards* along edges (i.e. min id over ancestors within
    /// its weakly-followed component by forward propagation).  Propagating
    /// minima is monotonic, so the Assurance Theorem applies.
    struct MinPropagation;

    type MinPartial = HashMap<VertexId, u64>;

    impl MinPropagation {
        /// Local fixpoint: propagate minima along local out-edges.
        fn local_propagate(frag: &Fragment, values: &mut MinPartial) {
            let mut changed = true;
            while changed {
                changed = false;
                for l in frag.all_locals() {
                    let v = frag.global_of(l);
                    let mine = values[&v];
                    for n in frag.out_edges(l) {
                        let t = frag.global_of(n.target as u32);
                        if mine < values[&t] {
                            values.insert(t, mine);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    impl PieProgram for MinPropagation {
        type Query = ();
        type Partial = MinPartial;
        type Key = VertexId;
        type Value = u64;
        type Output = HashMap<VertexId, u64>;

        fn name(&self) -> &str {
            "min-propagation"
        }

        fn scope(&self) -> BorderScope {
            BorderScope::Out
        }

        fn peval(&self, _q: &(), frag: &Fragment, ctx: &mut Messages<VertexId, u64>) -> MinPartial {
            let mut values: MinPartial = frag
                .all_locals()
                .map(|l| (frag.global_of(l), frag.global_of(l)))
                .collect();
            Self::local_propagate(frag, &mut values);
            for &l in frag.out_border_locals() {
                let v = frag.global_of(l);
                ctx.send(v, values[&v]);
            }
            values
        }

        fn inc_eval(
            &self,
            _q: &(),
            frag: &Fragment,
            partial: &mut MinPartial,
            messages: &[(VertexId, u64)],
            ctx: &mut Messages<VertexId, u64>,
        ) {
            let mut touched = false;
            for (v, value) in messages {
                if *value < partial[v] {
                    partial.insert(*v, *value);
                    touched = true;
                }
            }
            if touched {
                let before: MinPartial = partial.clone();
                Self::local_propagate(frag, partial);
                for &l in frag.out_border_locals() {
                    let v = frag.global_of(l);
                    if partial[&v] < before[&v] {
                        ctx.send(v, partial[&v]);
                    }
                }
            }
        }

        fn assemble(&self, _q: &(), partials: Vec<MinPartial>) -> HashMap<VertexId, u64> {
            let mut out = HashMap::new();
            for p in partials {
                for (v, value) in p {
                    out.entry(v)
                        .and_modify(|x: &mut u64| *x = (*x).min(value))
                        .or_insert(value);
                }
            }
            out
        }

        fn aggregate(&self, _key: &VertexId, a: u64, b: u64) -> u64 {
            a.min(b)
        }
    }

    fn ring_graph(n: u64) -> grape_graph::graph::Graph {
        let mut b = GraphBuilder::directed();
        for v in 0..n {
            b.push_edge(grape_graph::types::Edge::unweighted(v, (v + 1) % n));
        }
        b.build()
    }

    #[test]
    fn min_propagation_reaches_global_fixpoint() {
        let g = ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let session = GrapeSession::with_workers(3);
        let result = session.run(&frag, &MinPropagation, &()).unwrap();
        // Every vertex of the ring should converge to the global minimum 0.
        assert!(result.output.values().all(|&v| v == 0));
        assert!(
            result.metrics.supersteps >= 2,
            "ring needs multiple supersteps"
        );
        assert!(result.metrics.total_messages > 0);
    }

    #[test]
    fn single_fragment_terminates_after_peval() {
        let g = ring_graph(8);
        let frag = HashEdgeCut::new(1).partition(&g).unwrap();
        let session = GrapeSession::with_workers(2);
        let result = session.run(&frag, &MinPropagation, &()).unwrap();
        assert_eq!(result.metrics.supersteps, 1);
        assert_eq!(result.metrics.total_messages, 0);
        assert!(result.output.values().all(|&v| v == 0));
    }

    #[test]
    fn asynchronous_mode_matches_synchronous_output() {
        let g = ring_graph(16);
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let sync = GrapeSession::builder()
            .workers(4)
            .mode(EngineMode::Sync)
            .build()
            .unwrap()
            .run(&frag, &MinPropagation, &())
            .unwrap();
        let async_ = GrapeSession::builder()
            .workers(4)
            .mode(EngineMode::Async)
            .build()
            .unwrap()
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(sync.output, async_.output);
        assert!(async_.metrics.supersteps <= sync.metrics.supersteps);
        assert_eq!(async_.metrics.transport, "channel");
        assert_eq!(sync.metrics.transport, "barrier");
    }

    #[test]
    fn worker_count_does_not_change_the_answer() {
        let g = ring_graph(20);
        let frag = HashEdgeCut::new(5).partition(&g).unwrap();
        let one = GrapeSession::with_workers(1)
            .run(&frag, &MinPropagation, &())
            .unwrap();
        let four = GrapeSession::with_workers(4)
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(one.output, four.output);
    }

    #[test]
    fn channel_transport_under_sync_mode_agrees_with_barrier() {
        let g = ring_graph(18);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let barrier = GrapeSession::builder()
            .workers(3)
            .mode(EngineMode::Sync)
            .transport(TransportSpec::Barrier)
            .build()
            .unwrap()
            .run(&frag, &MinPropagation, &())
            .unwrap();
        let channel = GrapeSession::builder()
            .workers(3)
            .mode(EngineMode::Sync)
            .transport(TransportSpec::Channel)
            .build()
            .unwrap()
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(barrier.output, channel.output);
        // Exact message counts may differ: a streaming transport can deliver
        // within the sweep, letting a later-scheduled fragment consume two
        // rounds of mail in one drain.  Both still ship something real.
        assert!(barrier.metrics.total_messages > 0);
        assert!(channel.metrics.total_messages > 0);
    }

    #[test]
    fn failure_recovery_with_checkpoint_still_converges() {
        let g = ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let session = GrapeSession::builder()
            .workers(3)
            .mode(EngineMode::Sync)
            .checkpoint_every(1)
            .inject_failure(2, 1)
            .build()
            .unwrap();
        let result = session.run(&frag, &MinPropagation, &()).unwrap();
        assert_eq!(result.metrics.recovered_failures, 1);
        assert!(result.metrics.checkpoints >= 1);
        assert!(result.output.values().all(|&v| v == 0));
    }

    #[test]
    fn failure_without_checkpoint_restarts_and_converges() {
        let g = ring_graph(9);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let session = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .inject_failure(1, 0)
            .build()
            .unwrap();
        let result = session.run(&frag, &MinPropagation, &()).unwrap();
        assert_eq!(result.metrics.recovered_failures, 1);
        assert!(result.output.values().all(|&v| v == 0));
    }

    /// A program without a process codec cannot cross worker pipes: the
    /// engine rejects `TransportSpec::Process` with a clear configuration
    /// error instead of spawning subprocesses it could not talk to.
    #[test]
    fn process_transport_requires_a_codec() {
        let g = ring_graph(8);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let err = GrapeSession::builder()
                .workers(2)
                .mode(mode)
                .transport(TransportSpec::Process { workers: 2 })
                .build()
                .unwrap()
                .run(&frag, &MinPropagation, &())
                .unwrap_err();
            match err {
                EngineError::InvalidConfig(msg) => {
                    assert!(msg.contains("process codec"), "{msg}")
                }
                other => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn superstep_limit_returns_error() {
        let g = ring_graph(32);
        let frag = RangeEdgeCut::new(8).partition(&g).unwrap();
        let session = GrapeSession::builder()
            .workers(2)
            .max_supersteps(2)
            .build()
            .unwrap();
        let err = session.run(&frag, &MinPropagation, &()).unwrap_err();
        assert_eq!(err, EngineError::DidNotConverge { max_supersteps: 2 });
    }

    #[test]
    fn metrics_record_per_superstep_entries() {
        let g = ring_graph(12);
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let result = GrapeSession::with_workers(2)
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(
            result.metrics.per_superstep.len(),
            result.metrics.supersteps
        );
        assert_eq!(result.metrics.fragments, 4);
        assert!(result.metrics.seconds() >= 0.0);
        assert!(result.metrics.summary().contains("min-propagation"));
    }

    #[test]
    fn unchanged_values_are_not_reshipped() {
        // The delivered-cache must drop repeated identical values.  With the
        // ring, once a vertex's minimum stabilises no more messages flow.
        let g = ring_graph(10);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let session = GrapeSession::builder()
            .workers(2)
            .mode(EngineMode::Sync)
            .build()
            .unwrap();
        let result = session.run(&frag, &MinPropagation, &()).unwrap();
        // Each border vertex can change at most a handful of times; far fewer
        // messages than vertices × supersteps.
        assert!(
            result.metrics.total_messages <= frag.num_border_vertices() * result.metrics.supersteps,
            "messages {} vs bound {}",
            result.metrics.total_messages,
            frag.num_border_vertices() * result.metrics.supersteps
        );
    }

    /// PEval/IncEval call accounting: a full run calls PEval exactly once
    /// per fragment, in both runtimes.
    #[test]
    fn full_runs_count_one_peval_per_fragment() {
        let g = ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        for mode in [EngineMode::Sync, EngineMode::Async] {
            let result = GrapeSession::builder()
                .workers(2)
                .mode(mode)
                .build()
                .unwrap()
                .run(&frag, &MinPropagation, &())
                .unwrap();
            assert_eq!(result.metrics.peval_calls, 3, "{mode:?}");
            assert!(result.metrics.inceval_calls > 0, "{mode:?}");
            assert!(!result.metrics.incremental);
        }
    }
}
