//! The GRAPE engine: coordinator, workers and the simultaneous fixpoint
//! computation of Section 3.1.
//!
//! Given a fragmentation `F = (F_1, …, F_m)`, a PIE program and a query `Q`,
//! the engine
//!
//! 1. runs `PEval` on every fragment in parallel (superstep 0),
//! 2. collects the changed update parameters, resolves conflicts with
//!    `aggregateMsg`, deduces destinations via the fragmentation graph `G_P`
//!    and ships only *changed* values (the coordinator's message grouping of
//!    Section 3.2(3)),
//! 3. iterates `IncEval` on fragments with pending messages until no more
//!    updates can be made (the fixpoint), and
//! 4. calls `Assemble` on the partial results.
//!
//! Physical workers are OS threads; fragments are virtual workers mapped onto
//! physical workers by the [`crate::load_balance::LoadBalancer`].  Metrics
//! (supersteps, messages, bytes, wall time) are recorded in
//! [`crate::metrics::EngineMetrics`], which is what the benchmark harness
//! reports for every table and figure of the paper.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

use grape_partition::fragment::{Fragment, Fragmentation};

use crate::config::{EngineConfig, EngineMode};
use crate::load_balance::LoadBalancer;
use crate::metrics::{EngineMetrics, SuperstepMetrics};
use crate::pie::{KeyVertex, Messages, PieProgram};

/// One lock-protected buffer of `(key, value)` update-parameter assignments
/// per fragment.
type KvQueues<K, V> = Vec<Mutex<Vec<(K, V)>>>;

/// Errors produced by an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The fragmentation contains no fragments.
    NoFragments,
    /// The fixpoint was not reached within `max_supersteps` — the program
    /// most likely violates the monotonic condition of the Assurance Theorem.
    DidNotConverge {
        /// The configured superstep limit that was hit.
        max_supersteps: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoFragments => write!(f, "fragmentation has no fragments"),
            EngineError::DidNotConverge { max_supersteps } => write!(
                f,
                "no fixpoint after {max_supersteps} supersteps; \
                 the PIE program is probably not monotonic"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of an engine run: the assembled output plus run metrics.
#[derive(Debug, Clone)]
pub struct RunResult<O> {
    /// The assembled answer `Q(G)`.
    pub output: O,
    /// Metrics of the run.
    pub metrics: EngineMetrics,
}

/// Checkpoint of the whole computation state, used for failure recovery.
struct Checkpoint<P: PieProgram> {
    superstep: usize,
    partials: Vec<Option<P::Partial>>,
    inboxes: Vec<Vec<(P::Key, P::Value)>>,
    delivered: Vec<HashMap<P::Key, P::Value>>,
}

/// The GRAPE parallel engine.
#[derive(Debug, Clone, Default)]
pub struct GrapeEngine {
    config: EngineConfig,
    balancer: LoadBalancer,
}

impl GrapeEngine {
    /// Creates an engine with the given configuration and the default load
    /// balancer.
    pub fn new(config: EngineConfig) -> Self {
        GrapeEngine {
            config,
            balancer: LoadBalancer::default(),
        }
    }

    /// Overrides the load balancer.
    pub fn with_balancer(mut self, balancer: LoadBalancer) -> Self {
        self.balancer = balancer;
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs a PIE program over a fragmented graph and returns the assembled
    /// output together with the run metrics.
    pub fn run<P: PieProgram>(
        &self,
        fragmentation: &Fragmentation,
        program: &P,
        query: &P::Query,
    ) -> Result<RunResult<P::Output>, EngineError> {
        let m = fragmentation.num_fragments();
        if m == 0 {
            return Err(EngineError::NoFragments);
        }
        let total_start = Instant::now();
        let mut metrics = EngineMetrics {
            program: program.name().to_string(),
            workers: self.config.num_workers,
            fragments: m,
            ..Default::default()
        };

        // (0) Optional d-hop fragment expansion (SubIso).  The shipped
        // vertices/edges are counted as communication, mirroring the paper's
        // "message M_i … including all nodes and edges in C_i.x̄ from other
        // fragments".
        let hops = program.expansion_hops(query);
        let fragments: Vec<Fragment> = if hops > 0 {
            let mut expanded = Vec::with_capacity(m);
            for i in 0..m {
                let (f, shipped_vertices, shipped_edges) = fragmentation.expand_fragment(i, hops);
                metrics.add_expansion(shipped_vertices * 24 + shipped_edges * 24);
                expanded.push(f);
            }
            expanded
        } else {
            fragmentation.fragments().to_vec()
        };

        // (1) Map virtual workers (fragments) to physical workers.
        let assignment = self.balancer.assign(fragmentation, self.config.num_workers);

        // Shared per-fragment state.
        let partials: Vec<Mutex<Option<P::Partial>>> = (0..m).map(|_| Mutex::new(None)).collect();
        let inboxes: KvQueues<P::Key, P::Value> = (0..m).map(|_| Mutex::new(Vec::new())).collect();
        let mut delivered: Vec<HashMap<P::Key, P::Value>> = vec![HashMap::new(); m];
        let mut checkpoint: Option<Checkpoint<P>> = None;
        let mut handled_failures = vec![false; self.config.injected_failures.len()];

        let gp = fragmentation.gp();
        let scope = program.scope();
        let mut superstep = 0usize;

        loop {
            if superstep >= self.config.max_supersteps {
                return Err(EngineError::DidNotConverge {
                    max_supersteps: self.config.max_supersteps,
                });
            }

            // (1a) Failure injection + arbitrator recovery.
            let mut failed = false;
            for (idx, failure) in self.config.injected_failures.iter().enumerate() {
                if !handled_failures[idx] && failure.superstep == superstep && failure.fragment < m
                {
                    handled_failures[idx] = true;
                    failed = true;
                    metrics.recovered_failures += 1;
                }
            }
            if failed {
                match &checkpoint {
                    Some(ckpt) => {
                        superstep = ckpt.superstep;
                        for (i, p) in ckpt.partials.iter().enumerate() {
                            *partials[i].lock() = p.clone();
                        }
                        for (i, inbox) in ckpt.inboxes.iter().enumerate() {
                            *inboxes[i].lock() = inbox.clone();
                        }
                        delivered = ckpt.delivered.clone();
                    }
                    None => {
                        // No checkpoint yet: restart the whole computation.
                        superstep = 0;
                        for p in &partials {
                            *p.lock() = None;
                        }
                        for inbox in &inboxes {
                            inbox.lock().clear();
                        }
                        delivered.iter_mut().for_each(HashMap::clear);
                    }
                }
            }

            let step_start = Instant::now();
            let is_peval = superstep == 0;

            // (2) Decide which fragments are active this superstep.
            let active: Vec<bool> = (0..m)
                .map(|i| is_peval || !inboxes[i].lock().is_empty())
                .collect();
            let active_count = active.iter().filter(|&&a| a).count();
            if active_count == 0 {
                break;
            }

            // (3) Local evaluation (PEval in superstep 0, IncEval afterwards).
            let outputs: KvQueues<P::Key, P::Value> =
                (0..m).map(|_| Mutex::new(Vec::new())).collect();

            match self.config.mode {
                EngineMode::Synchronous => {
                    let fragments_ref = &fragments;
                    let partials_ref = &partials;
                    let inboxes_ref = &inboxes;
                    let outputs_ref = &outputs;
                    let active_ref = &active;
                    std::thread::scope(|s| {
                        for worker_fragments in &assignment {
                            let worker_fragments = worker_fragments.clone();
                            s.spawn(move || {
                                for fi in worker_fragments {
                                    if !active_ref[fi] {
                                        continue;
                                    }
                                    let mut ctx = Messages::new();
                                    if is_peval {
                                        let partial =
                                            program.peval(query, &fragments_ref[fi], &mut ctx);
                                        *partials_ref[fi].lock() = Some(partial);
                                    } else {
                                        let msgs = std::mem::take(&mut *inboxes_ref[fi].lock());
                                        let mut guard = partials_ref[fi].lock();
                                        let partial = guard
                                            .as_mut()
                                            .expect("IncEval before PEval: missing partial result");
                                        program.inc_eval(
                                            query,
                                            &fragments_ref[fi],
                                            partial,
                                            &msgs,
                                            &mut ctx,
                                        );
                                    }
                                    *outputs_ref[fi].lock() = ctx.take();
                                }
                            });
                        }
                    });
                }
                EngineMode::Asynchronous => {
                    // Sequential sweep; messages produced by a fragment become
                    // visible to later fragments in the same sweep.
                    for fi in 0..m {
                        if !active[fi] {
                            continue;
                        }
                        let mut ctx = Messages::new();
                        if is_peval {
                            let partial = program.peval(query, &fragments[fi], &mut ctx);
                            *partials[fi].lock() = Some(partial);
                        } else {
                            let msgs = std::mem::take(&mut *inboxes[fi].lock());
                            let mut guard = partials[fi].lock();
                            let partial = guard.as_mut().expect("missing partial result");
                            program.inc_eval(query, &fragments[fi], partial, &msgs, &mut ctx);
                        }
                        *outputs[fi].lock() = ctx.take();
                    }
                }
            }

            // (4) Coordinator: aggregate conflicts, drop unchanged values,
            // route via G_P, account communication.
            let mut per_destination: Vec<HashMap<P::Key, P::Value>> =
                (0..m).map(|_| HashMap::new()).collect();
            for fi in 0..m {
                if !active[fi] {
                    continue;
                }
                for (key, value) in outputs[fi].lock().drain(..) {
                    for dest in gp.route(key.vertex(), fi, scope) {
                        match per_destination[dest].entry(key.clone()) {
                            std::collections::hash_map::Entry::Occupied(mut slot) => {
                                let merged =
                                    program.aggregate(&key, slot.get().clone(), value.clone());
                                slot.insert(merged);
                            }
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                slot.insert(value.clone());
                            }
                        }
                    }
                }
            }
            let mut routed_messages = 0usize;
            let mut routed_bytes = 0usize;
            for (dest, updates) in per_destination.into_iter().enumerate() {
                let mut inbox = inboxes[dest].lock();
                for (key, value) in updates {
                    if delivered[dest].get(&key) == Some(&value) {
                        continue; // unchanged since the last delivery
                    }
                    routed_messages += 1;
                    routed_bytes += program.key_size(&key) + program.value_size(&value);
                    delivered[dest].insert(key.clone(), value.clone());
                    inbox.push((key, value));
                }
            }

            metrics.push_superstep(SuperstepMetrics {
                superstep,
                active_fragments: active_count,
                messages: routed_messages,
                bytes: routed_bytes,
                duration: step_start.elapsed(),
            });
            metrics.eval_time += step_start.elapsed();

            // (5) Checkpoint.
            if let Some(every) = self.config.checkpoint_every {
                if (superstep + 1).is_multiple_of(every) {
                    checkpoint = Some(Checkpoint {
                        superstep: superstep + 1,
                        partials: partials.iter().map(|p| p.lock().clone()).collect(),
                        inboxes: inboxes.iter().map(|i| i.lock().clone()).collect(),
                        delivered: delivered.clone(),
                    });
                    metrics.checkpoints += 1;
                }
            }

            superstep += 1;
            if routed_messages == 0 {
                break; // fixpoint: no pending messages anywhere
            }
        }

        // (6) Assemble.
        let collected: Vec<P::Partial> = partials
            .into_iter()
            .map(|p| p.into_inner().expect("every fragment ran PEval"))
            .collect();
        let output = program.assemble(query, collected);
        metrics.total_time = total_start.elapsed();
        Ok(RunResult { output, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::VertexId;
    use grape_partition::edge_cut::{HashEdgeCut, RangeEdgeCut};
    use grape_partition::fragmentation_graph::BorderScope;
    use grape_partition::strategy::PartitionStrategy;
    use std::collections::HashMap;

    /// A miniature PIE program used to exercise the engine without the
    /// algorithms crate: every vertex computes the minimum global vertex id
    /// reachable *backwards* along edges (i.e. min id over ancestors within
    /// its weakly-followed component by forward propagation).  Propagating
    /// minima is monotonic, so the Assurance Theorem applies.
    struct MinPropagation;

    type MinPartial = HashMap<VertexId, u64>;

    impl MinPropagation {
        /// Local fixpoint: propagate minima along local out-edges.
        fn local_propagate(frag: &Fragment, values: &mut MinPartial) {
            let mut changed = true;
            while changed {
                changed = false;
                for l in frag.all_locals() {
                    let v = frag.global_of(l);
                    let mine = values[&v];
                    for n in frag.out_edges(l) {
                        let t = frag.global_of(n.target as u32);
                        if mine < values[&t] {
                            values.insert(t, mine);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    impl PieProgram for MinPropagation {
        type Query = ();
        type Partial = MinPartial;
        type Key = VertexId;
        type Value = u64;
        type Output = HashMap<VertexId, u64>;

        fn name(&self) -> &str {
            "min-propagation"
        }

        fn scope(&self) -> BorderScope {
            BorderScope::Out
        }

        fn peval(&self, _q: &(), frag: &Fragment, ctx: &mut Messages<VertexId, u64>) -> MinPartial {
            let mut values: MinPartial = frag
                .all_locals()
                .map(|l| (frag.global_of(l), frag.global_of(l)))
                .collect();
            Self::local_propagate(frag, &mut values);
            for &l in frag.out_border_locals() {
                let v = frag.global_of(l);
                ctx.send(v, values[&v]);
            }
            values
        }

        fn inc_eval(
            &self,
            _q: &(),
            frag: &Fragment,
            partial: &mut MinPartial,
            messages: &[(VertexId, u64)],
            ctx: &mut Messages<VertexId, u64>,
        ) {
            let mut touched = false;
            for (v, value) in messages {
                if *value < partial[v] {
                    partial.insert(*v, *value);
                    touched = true;
                }
            }
            if touched {
                let before: MinPartial = partial.clone();
                Self::local_propagate(frag, partial);
                for &l in frag.out_border_locals() {
                    let v = frag.global_of(l);
                    if partial[&v] < before[&v] {
                        ctx.send(v, partial[&v]);
                    }
                }
            }
        }

        fn assemble(&self, _q: &(), partials: Vec<MinPartial>) -> HashMap<VertexId, u64> {
            let mut out = HashMap::new();
            for p in partials {
                for (v, value) in p {
                    out.entry(v)
                        .and_modify(|x: &mut u64| *x = (*x).min(value))
                        .or_insert(value);
                }
            }
            out
        }

        fn aggregate(&self, _key: &VertexId, a: u64, b: u64) -> u64 {
            a.min(b)
        }
    }

    fn ring_graph(n: u64) -> grape_graph::graph::Graph {
        let mut b = GraphBuilder::directed();
        for v in 0..n {
            b.push_edge(grape_graph::types::Edge::unweighted(v, (v + 1) % n));
        }
        b.build()
    }

    #[test]
    fn min_propagation_reaches_global_fixpoint() {
        let g = ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let engine = GrapeEngine::new(EngineConfig::with_workers(3));
        let result = engine.run(&frag, &MinPropagation, &()).unwrap();
        // Every vertex of the ring should converge to the global minimum 0.
        assert!(result.output.values().all(|&v| v == 0));
        assert!(
            result.metrics.supersteps >= 2,
            "ring needs multiple supersteps"
        );
        assert!(result.metrics.total_messages > 0);
    }

    #[test]
    fn single_fragment_terminates_after_peval() {
        let g = ring_graph(8);
        let frag = HashEdgeCut::new(1).partition(&g).unwrap();
        let engine = GrapeEngine::new(EngineConfig::with_workers(2));
        let result = engine.run(&frag, &MinPropagation, &()).unwrap();
        assert_eq!(result.metrics.supersteps, 1);
        assert_eq!(result.metrics.total_messages, 0);
        assert!(result.output.values().all(|&v| v == 0));
    }

    #[test]
    fn asynchronous_mode_matches_synchronous_output() {
        let g = ring_graph(16);
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let sync = GrapeEngine::new(EngineConfig::with_workers(4))
            .run(&frag, &MinPropagation, &())
            .unwrap();
        let async_ = GrapeEngine::new(EngineConfig::with_workers(4).asynchronous())
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(sync.output, async_.output);
        assert!(async_.metrics.supersteps <= sync.metrics.supersteps);
    }

    #[test]
    fn worker_count_does_not_change_the_answer() {
        let g = ring_graph(20);
        let frag = HashEdgeCut::new(5).partition(&g).unwrap();
        let one = GrapeEngine::new(EngineConfig::with_workers(1))
            .run(&frag, &MinPropagation, &())
            .unwrap();
        let four = GrapeEngine::new(EngineConfig::with_workers(4))
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(one.output, four.output);
    }

    #[test]
    fn failure_recovery_with_checkpoint_still_converges() {
        let g = ring_graph(12);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let config = EngineConfig::with_workers(3)
            .with_checkpoint_every(1)
            .with_injected_failure(2, 1);
        let result = GrapeEngine::new(config)
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(result.metrics.recovered_failures, 1);
        assert!(result.metrics.checkpoints >= 1);
        assert!(result.output.values().all(|&v| v == 0));
    }

    #[test]
    fn failure_without_checkpoint_restarts_and_converges() {
        let g = ring_graph(9);
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let config = EngineConfig::with_workers(2).with_injected_failure(1, 0);
        let result = GrapeEngine::new(config)
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(result.metrics.recovered_failures, 1);
        assert!(result.output.values().all(|&v| v == 0));
    }

    #[test]
    fn superstep_limit_returns_error() {
        let g = ring_graph(32);
        let frag = RangeEdgeCut::new(8).partition(&g).unwrap();
        let config = EngineConfig::with_workers(2).with_max_supersteps(2);
        let err = GrapeEngine::new(config)
            .run(&frag, &MinPropagation, &())
            .unwrap_err();
        assert_eq!(err, EngineError::DidNotConverge { max_supersteps: 2 });
    }

    #[test]
    fn metrics_record_per_superstep_entries() {
        let g = ring_graph(12);
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let result = GrapeEngine::new(EngineConfig::with_workers(2))
            .run(&frag, &MinPropagation, &())
            .unwrap();
        assert_eq!(
            result.metrics.per_superstep.len(),
            result.metrics.supersteps
        );
        assert_eq!(result.metrics.fragments, 4);
        assert!(result.metrics.seconds() >= 0.0);
        assert!(result.metrics.summary().contains("min-propagation"));
    }

    #[test]
    fn unchanged_values_are_not_reshipped() {
        // The delivered-cache must drop repeated identical values.  With the
        // ring, once a vertex's minimum stabilises no more messages flow.
        let g = ring_graph(10);
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let result = GrapeEngine::new(EngineConfig::with_workers(2))
            .run(&frag, &MinPropagation, &())
            .unwrap();
        // Each border vertex can change at most a handful of times; far fewer
        // messages than vertices × supersteps.
        assert!(
            result.metrics.total_messages <= frag.num_border_vertices() * result.metrics.supersteps,
            "messages {} vs bound {}",
            result.metrics.total_messages,
            frag.num_border_vertices() * result.metrics.supersteps
        );
    }
}
