//! Runtime metrics of a GRAPE run: response time, supersteps and
//! communication volume — the three quantities the paper's evaluation
//! (Table 1, Figures 6, 8, 9) reports.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Per-superstep breakdown.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SuperstepMetrics {
    /// Superstep index (0 = PEval, ≥ 1 = IncEval rounds).
    pub superstep: usize,
    /// Number of fragments that did local work in this superstep.
    pub active_fragments: usize,
    /// Messages routed to workers at the end of the superstep.
    pub messages: usize,
    /// Bytes shipped for those messages.
    pub bytes: usize,
    /// Time of the superstep (local evaluation + routing): wall-clock under
    /// the synchronous runtime; summed concurrent evaluation durations
    /// under the barrier-free runtime (see
    /// [`EngineMetrics::eval_time`]).
    #[serde(skip)]
    pub duration: Duration,
}

/// Aggregate metrics of one engine run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Name of the PIE / vertex / block program that ran.
    pub program: String,
    /// Name of the transport that moved the messages (see
    /// [`crate::transport::TransportSpec`]); empty for engines that predate
    /// the transport layer (the baselines).
    #[serde(default)]
    pub transport: String,
    /// Number of physical workers used.
    pub workers: usize,
    /// Number of fragments (virtual workers).
    pub fragments: usize,
    /// Total supersteps executed (PEval counts as the first).
    pub supersteps: usize,
    /// Total number of routed messages.
    pub total_messages: usize,
    /// Total communication volume in bytes (messages + fragment expansion).
    pub total_bytes: usize,
    /// Bytes attributable to `d`-hop fragment expansion (SubIso).
    pub expansion_bytes: usize,
    /// Number of injected worker failures that were recovered.
    pub recovered_failures: usize,
    /// Number of checkpoints taken.
    pub checkpoints: usize,
    /// Number of `PEval` invocations.  An IncEval-only incremental refresh
    /// (see `crate::prepared::PreparedQuery::update`) reports **0** here —
    /// the pin of the prepared-query acceptance criterion — and a *bounded*
    /// non-monotone refresh reports the size of the damage frontier
    /// (`|damaged| < fragments`, the pin of the bounded-refresh criterion).
    #[serde(default)]
    pub peval_calls: usize,
    /// Number of `IncEval` invocations (evaluations that actually consumed
    /// messages; empty drains are not counted).
    #[serde(default)]
    pub inceval_calls: usize,
    /// Messages synthesized from `ΔG` by the per-fragment rebase step and
    /// injected into the mailboxes to start an incremental refresh.  Counted
    /// separately from the per-superstep message flow (they are part of
    /// [`EngineMetrics::total_messages`]).
    #[serde(default)]
    pub seed_messages: usize,
    /// Whether this run was an incremental refresh (IncEval-only, or a
    /// bounded refresh rooted at the damage frontier) rather than a full
    /// PEval-everywhere computation.
    #[serde(default)]
    pub incremental: bool,
    /// Bytes that crossed worker-subprocess pipes (requests + replies,
    /// JSON frames included): fragments and partials shipped at the
    /// handshake, per-evaluation message traffic, and collected partials.
    /// Always **0** for in-process transports.
    #[serde(default)]
    pub pipe_bytes: usize,
    /// Time spent in PEval/IncEval across all supersteps.  Under the
    /// synchronous runtime this is wall-clock per superstep; under the
    /// barrier-free runtime it is the *sum* of per-evaluation durations,
    /// which run concurrently across workers and can therefore exceed
    /// wall-clock time (use [`EngineMetrics::total_time`] for wall-clock
    /// comparisons — that is what the benches report).
    #[serde(skip)]
    pub eval_time: Duration,
    /// Total wall-clock time of the run (evaluation + routing + assemble).
    #[serde(skip)]
    pub total_time: Duration,
    /// Per-superstep breakdown.
    pub per_superstep: Vec<SuperstepMetrics>,
}

impl EngineMetrics {
    /// Communication volume in megabytes (the unit of Table 1 and Figure 8).
    pub fn comm_megabytes(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Total wall-clock time in seconds (the unit of Table 1 and Figure 6).
    pub fn seconds(&self) -> f64 {
        self.total_time.as_secs_f64()
    }

    /// Records a finished superstep.
    pub fn push_superstep(&mut self, step: SuperstepMetrics) {
        self.supersteps = self.supersteps.max(step.superstep + 1);
        self.total_messages += step.messages;
        self.total_bytes += step.bytes;
        self.per_superstep.push(step);
    }

    /// Adds expansion (d-hop neighborhood shipping) communication.
    pub fn add_expansion(&mut self, bytes: usize) {
        self.expansion_bytes += bytes;
        self.total_bytes += bytes;
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} workers, {} fragments, {} supersteps, {} msgs, {:.3} MB, {:.3} s",
            self.program,
            self.workers,
            self.fragments,
            self.supersteps,
            self.total_messages,
            self.comm_megabytes(),
            self.seconds()
        )
    }
}

/// Latency statistics over a set of per-operation durations — what the
/// serving-scaling experiment reports per (K, threads, arrival-pattern)
/// cell.  Percentiles use the nearest-rank method on the sorted samples,
/// so `p50`/`p99` are always actual observed values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub samples: usize,
    /// Arithmetic mean, in milliseconds.
    pub mean_ms: f64,
    /// Median (50th percentile), in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, in milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, in milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarizes a set of durations; all-zero for an empty slice.
    pub fn from_durations(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are never NaN"));
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        LatencySummary {
            samples: ms.len(),
            mean_ms: mean,
            p50_ms: percentile(&ms, 50.0),
            p99_ms: percentile(&ms, 99.0),
            max_ms: *ms.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_uses_nearest_rank_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::from_durations(&samples);
        assert_eq!(s.samples, 100);
        assert!((s.p50_ms - 50.0).abs() < 1e-9);
        assert!((s.p99_ms - 99.0).abs() < 1e-9);
        assert!((s.max_ms - 100.0).abs() < 1e-9);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);

        let one = LatencySummary::from_durations(&[Duration::from_millis(7)]);
        assert!((one.p50_ms - 7.0).abs() < 1e-9);
        assert!((one.p99_ms - 7.0).abs() < 1e-9);

        let empty = LatencySummary::from_durations(&[]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.max_ms, 0.0);
    }

    #[test]
    fn push_superstep_accumulates_totals() {
        let mut m = EngineMetrics {
            program: "sssp".into(),
            workers: 4,
            ..Default::default()
        };
        m.push_superstep(SuperstepMetrics {
            superstep: 0,
            active_fragments: 4,
            messages: 10,
            bytes: 160,
            duration: Duration::from_millis(5),
        });
        m.push_superstep(SuperstepMetrics {
            superstep: 1,
            active_fragments: 2,
            messages: 3,
            bytes: 48,
            duration: Duration::from_millis(2),
        });
        assert_eq!(m.supersteps, 2);
        assert_eq!(m.total_messages, 13);
        assert_eq!(m.total_bytes, 208);
        assert_eq!(m.per_superstep.len(), 2);
    }

    #[test]
    fn expansion_counts_towards_total_bytes() {
        let mut m = EngineMetrics::default();
        m.add_expansion(1024);
        assert_eq!(m.expansion_bytes, 1024);
        assert_eq!(m.total_bytes, 1024);
    }

    #[test]
    fn unit_conversions() {
        let m = EngineMetrics {
            total_bytes: 2 * 1024 * 1024,
            total_time: Duration::from_millis(1500),
            ..Default::default()
        };
        assert!((m.comm_megabytes() - 2.0).abs() < 1e-9);
        assert!((m.seconds() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_program_name() {
        let m = EngineMetrics {
            program: "cc".into(),
            ..Default::default()
        };
        assert!(m.summary().contains("cc"));
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = EngineMetrics {
            program: "sim".into(),
            workers: 2,
            peval_calls: 4,
            inceval_calls: 9,
            seed_messages: 3,
            incremental: true,
            ..Default::default()
        };
        m.push_superstep(SuperstepMetrics {
            superstep: 0,
            messages: 1,
            bytes: 8,
            ..Default::default()
        });
        let json = serde_json::to_string(&m).unwrap();
        let back: EngineMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_messages, 1);
        assert_eq!(back.program, "sim");
        assert_eq!(back.peval_calls, 4);
        assert_eq!(back.inceval_calls, 9);
        assert_eq!(back.seed_messages, 3);
        assert!(back.incremental);
    }
}
