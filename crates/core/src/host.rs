//! Location-transparent worker hosts.
//!
//! The engine's runtimes ([`crate::engine`]) never touch fragment storage or
//! partial results directly: they schedule *evaluations* against a
//! [`WorkerHost`], which owns the fragments and the retained partials and
//! runs PEval/IncEval wherever they live —
//!
//! * [`InProcessHost`] — fragments stay in shared memory and evaluations
//!   run on the calling thread (the classic single-process GRAPE engine);
//! * [`ProcessHost`] — fragments are sharded across `grape-worker` OS
//!   subprocesses ([`grape_partition::shard`]), evaluations execute inside
//!   the owning process, and only messages/partials cross the stdin/stdout
//!   pipes ([`crate::worker_proto`]).
//!
//! The host boundary is exactly the paper's worker boundary: everything the
//! coordinator does (routing through `G_P`, `aggregateMsg` at the receiving
//! mailbox, superstep scheduling, checkpoints) stays with the engine;
//! everything a worker does (sequential PEval/IncEval over an owned
//! fragment) happens behind this trait.

use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use grape_partition::fragment::Fragment;
use grape_partition::shard::shard_assignment;
use serde::{Deserialize, Serialize, Value};

use crate::engine::EngineError;
use crate::pie::{AggregateFn, Messages, PieProgram, ProcessCodec};
use crate::worker_proto::{
    init_frame, locate_worker_binary, read_frame, write_value_frame, WORKER_BIN_ENV,
};

/// What one PEval/IncEval evaluation hands back to the engine: the
/// coalesced update-parameter messages it produced, or the error that
/// stopped it.
pub(crate) type EvalResult<P> =
    Result<Vec<(<P as PieProgram>::Key, <P as PieProgram>::Value)>, EngineError>;

/// Where one run's evaluations execute.  The engine addresses fragments by
/// index and never sees where they live.
///
/// Hosts apply the program's `aggregateMsg` at insert time to the messages
/// an evaluation produces (via [`Messages::with_aggregator`]), so the
/// engine receives already-coalesced update batches from every host alike.
pub(crate) trait WorkerHost<P: PieProgram>: Sync {
    /// Runs PEval on fragment `fi`, installs its partial, and returns the
    /// produced update-parameter messages.
    fn peval(&self, fi: usize) -> EvalResult<P>;

    /// Runs IncEval on fragment `fi` with the drained `updates`, mutating
    /// its retained partial in place.
    fn inc_eval(&self, fi: usize, updates: &[(P::Key, P::Value)]) -> EvalResult<P>;

    /// Clones every fragment's current partial (checkpointing).
    fn checkpoint_partials(&self) -> Result<Vec<Option<P::Partial>>, EngineError>;

    /// Overwrites every fragment's partial from a checkpoint.
    fn restore_partials(&self, saved: &[Option<P::Partial>]) -> Result<(), EngineError>;

    /// Drops every fragment's partial (restart-from-scratch recovery).
    fn clear_partials(&self) -> Result<(), EngineError>;

    /// Tears the host down and returns the final partials, one per
    /// fragment, in fragment order.
    fn into_partials(self) -> Result<Vec<P::Partial>, EngineError>
    where
        Self: Sized;
}

/// The shared-memory host: fragments and partials live in this process and
/// evaluations run on the engine's worker threads.
pub(crate) struct InProcessHost<'r, P: PieProgram> {
    program: &'r P,
    query: &'r P::Query,
    fragments: &'r [Arc<Fragment>],
    aggregate: AggregateFn<'r, P::Key, P::Value>,
    partials: Vec<Mutex<Option<P::Partial>>>,
}

impl<'r, P: PieProgram> InProcessHost<'r, P> {
    /// `initial` pre-populates the partials: `None` everywhere for a full
    /// run, the retained partials for an incremental refresh.
    pub fn new(
        program: &'r P,
        query: &'r P::Query,
        fragments: &'r [Arc<Fragment>],
        aggregate: AggregateFn<'r, P::Key, P::Value>,
        initial: Vec<Option<P::Partial>>,
    ) -> Self {
        debug_assert_eq!(initial.len(), fragments.len());
        InProcessHost {
            program,
            query,
            fragments,
            aggregate,
            partials: initial.into_iter().map(Mutex::new).collect(),
        }
    }
}

impl<P: PieProgram> WorkerHost<P> for InProcessHost<'_, P> {
    fn peval(&self, fi: usize) -> EvalResult<P> {
        let mut msgs = Messages::with_aggregator(self.aggregate);
        let partial = self
            .program
            .peval(self.query, &self.fragments[fi], &mut msgs);
        *self.partials[fi].lock() = Some(partial);
        Ok(msgs.take())
    }

    fn inc_eval(&self, fi: usize, updates: &[(P::Key, P::Value)]) -> EvalResult<P> {
        let mut msgs = Messages::with_aggregator(self.aggregate);
        let mut guard = self.partials[fi].lock();
        let partial = guard
            .as_mut()
            .expect("IncEval before PEval: missing partial result");
        self.program
            .inc_eval(self.query, &self.fragments[fi], partial, updates, &mut msgs);
        Ok(msgs.take())
    }

    fn checkpoint_partials(&self) -> Result<Vec<Option<P::Partial>>, EngineError> {
        Ok(self.partials.iter().map(|p| p.lock().clone()).collect())
    }

    fn restore_partials(&self, saved: &[Option<P::Partial>]) -> Result<(), EngineError> {
        for (slot, p) in self.partials.iter().zip(saved) {
            *slot.lock() = p.clone();
        }
        Ok(())
    }

    fn clear_partials(&self) -> Result<(), EngineError> {
        for slot in &self.partials {
            *slot.lock() = None;
        }
        Ok(())
    }

    fn into_partials(self) -> Result<Vec<P::Partial>, EngineError> {
        Ok(self
            .partials
            .into_iter()
            .map(|p| p.into_inner().expect("every fragment has a partial result"))
            .collect())
    }
}

/// One spawned `grape-worker` subprocess with its pipe endpoints.
struct WorkerChild {
    child: Child,
    stdin: ChildStdin,
    stdout: std::io::BufReader<ChildStdout>,
}

impl WorkerChild {
    /// One request/reply round trip.  Returns the reply plus the bytes that
    /// crossed the pipe (request + reply payloads).
    fn request(&mut self, frame: &Value) -> Result<(Value, usize), String> {
        let sent = write_value_frame(&mut self.stdin, frame)?;
        let reply = read_frame(&mut self.stdout)?
            .ok_or_else(|| "worker subprocess closed its pipe mid-run".to_string())?;
        let bytes = sent + reply.len();
        let v: Value =
            serde_json::from_str(&reply).map_err(|e| format!("malformed worker reply: {e}"))?;
        Ok((v, bytes))
    }
}

impl Drop for WorkerChild {
    /// Reap on every exit path: a host that is dropped mid-run (engine
    /// error, panic unwind, daemon shutdown) kills and waits for its
    /// children, so no orphan `grape-worker` survives the parent.
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The multi-process host behind [`crate::transport::TransportSpec::Process`]:
/// spawns one `grape-worker` per shard, ships each shard's fragments (and,
/// on a refresh, retained partials) in the handshake, and forwards every
/// evaluation to the owning subprocess.
pub(crate) struct ProcessHost<'r, P: PieProgram> {
    codec: &'r dyn ProcessCodec<P>,
    children: Vec<Mutex<WorkerChild>>,
    /// Fragment index → index into `children`.
    owner: Vec<usize>,
    pipe_bytes: Arc<AtomicUsize>,
}

impl<'r, P: PieProgram> ProcessHost<'r, P> {
    /// Spawns `workers` subprocesses (clamped to `1..=fragments.len()`),
    /// handshakes each with its shard, and returns the connected host.
    /// `partials` pre-populates the workers' retained partials (incremental
    /// refresh); `None` starts everyone empty (full run).
    pub fn spawn(
        program: &'r P,
        query: &P::Query,
        fragments: &[Arc<Fragment>],
        partials: Option<&[P::Partial]>,
        workers: usize,
    ) -> Result<Self, EngineError> {
        let codec = program.process_codec().ok_or_else(|| {
            EngineError::InvalidConfig(format!(
                "program `{}` has no process codec; \
                 implement PieProgram::process_codec to run under TransportSpec::Process",
                program.name()
            ))
        })?;
        let m = fragments.len();
        let workers = workers.clamp(1, m);
        let binary = locate_worker_binary().ok_or_else(|| {
            EngineError::InvalidConfig(format!(
                "grape-worker binary not found; build the grape-daemon crate \
                 or point {WORKER_BIN_ENV} at it"
            ))
        })?;

        let shards = shard_assignment(m, workers);
        let mut owner = vec![0usize; m];
        let pipe_bytes = Arc::new(AtomicUsize::new(0));
        let mut children = Vec::with_capacity(workers);
        for (wi, shard) in shards.iter().enumerate() {
            for &fi in shard {
                owner[fi] = wi;
            }
            let mut child = Command::new(&binary)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| {
                    EngineError::Worker(format!("cannot spawn {}: {e}", binary.display()))
                })?;
            let stdin = child.stdin.take().expect("piped stdin");
            let stdout = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
            let mut worker = WorkerChild {
                child,
                stdin,
                stdout,
            };
            // Handshake: only this shard's fragments (and partials) ship.
            let shard_frags: Vec<(usize, &Fragment)> = shard
                .iter()
                .map(|&fi| (fi, fragments[fi].as_ref()))
                .collect();
            let shard_partials: Vec<(usize, Value)> = match partials {
                Some(ps) => shard
                    .iter()
                    .map(|&fi| (fi, codec.encode_partial(&ps[fi])))
                    .collect(),
                None => Vec::new(),
            };
            let init = init_frame(
                program.name(),
                codec.encode_query(query),
                &shard_frags,
                shard_partials,
            );
            let (reply, bytes) = worker
                .request(&init)
                .map_err(|e| EngineError::Worker(format!("worker {wi} handshake: {e}")))?;
            pipe_bytes.fetch_add(bytes, Ordering::Relaxed);
            check_ok(&reply).map_err(EngineError::Worker)?;
            children.push(Mutex::new(worker));
        }

        Ok(ProcessHost {
            codec,
            children,
            owner,
            pipe_bytes,
        })
    }

    /// The shared pipe-byte counter, for metrics read after the host is
    /// consumed by [`WorkerHost::into_partials`].
    pub fn pipe_counter(&self) -> Arc<AtomicUsize> {
        self.pipe_bytes.clone()
    }

    fn rpc(&self, wi: usize, frame: &Value) -> Result<Value, EngineError> {
        let (reply, bytes) = self.children[wi]
            .lock()
            .request(frame)
            .map_err(|e| EngineError::Worker(format!("worker {wi}: {e}")))?;
        self.pipe_bytes.fetch_add(bytes, Ordering::Relaxed);
        check_ok(&reply).map_err(|e| EngineError::Worker(format!("worker {wi}: {e}")))?;
        Ok(reply)
    }

    fn eval(&self, fi: usize, frame: Value) -> EvalResult<P> {
        let reply = self.rpc(self.owner[fi], &frame)?;
        let mut out = Vec::new();
        match reply.get_field("messages") {
            Some(Value::Seq(entries)) => {
                for entry in entries {
                    out.push(self.codec.decode_message(entry).map_err(|e| {
                        EngineError::Worker(format!("undecodable worker message: {e}"))
                    })?);
                }
            }
            _ => {
                return Err(EngineError::Worker(
                    "worker reply is missing `messages`".to_string(),
                ))
            }
        }
        Ok(out)
    }
}

fn check_ok(reply: &Value) -> Result<(), String> {
    match reply.get_field("ok") {
        Some(Value::Bool(true)) => Ok(()),
        _ => Err(reply
            .get_field("error")
            .and_then(Value::as_str)
            .unwrap_or("worker reported an unspecified error")
            .to_string()),
    }
}

fn op_frame(op: &str, fields: Vec<(String, Value)>) -> Value {
    let mut map = vec![("op".to_string(), Value::Str(op.to_string()))];
    map.extend(fields);
    Value::Map(map)
}

impl<P: PieProgram> WorkerHost<P> for ProcessHost<'_, P> {
    fn peval(&self, fi: usize) -> EvalResult<P> {
        self.eval(
            fi,
            op_frame("peval", vec![("fragment".to_string(), fi.to_value())]),
        )
    }

    fn inc_eval(&self, fi: usize, updates: &[(P::Key, P::Value)]) -> EvalResult<P> {
        let encoded: Vec<Value> = updates
            .iter()
            .map(|(k, v)| self.codec.encode_message(k, v))
            .collect();
        self.eval(
            fi,
            op_frame(
                "inceval",
                vec![
                    ("fragment".to_string(), fi.to_value()),
                    ("updates".to_string(), Value::Seq(encoded)),
                ],
            ),
        )
    }

    fn checkpoint_partials(&self) -> Result<Vec<Option<P::Partial>>, EngineError> {
        let mut out: Vec<Option<P::Partial>> = (0..self.owner.len()).map(|_| None).collect();
        for wi in 0..self.children.len() {
            let reply = self.rpc(wi, &op_frame("get_partials", Vec::new()))?;
            let Some(Value::Seq(entries)) = reply.get_field("partials") else {
                return Err(EngineError::Worker(
                    "worker reply is missing `partials`".to_string(),
                ));
            };
            for entry in entries {
                let id = entry
                    .get_field("id")
                    .and_then(|v| usize::from_value(v).ok())
                    .ok_or_else(|| {
                        EngineError::Worker("worker partial without an id".to_string())
                    })?;
                if id >= out.len() || self.owner[id] != wi {
                    return Err(EngineError::Worker(format!(
                        "worker {wi} returned a partial for fragment {id} it does not own"
                    )));
                }
                match entry.get_field("partial") {
                    Some(Value::Null) | None => {}
                    Some(v) => {
                        out[id] = Some(self.codec.decode_partial(v).map_err(|e| {
                            EngineError::Worker(format!("undecodable partial {id}: {e}"))
                        })?);
                    }
                }
            }
        }
        Ok(out)
    }

    fn restore_partials(&self, saved: &[Option<P::Partial>]) -> Result<(), EngineError> {
        for wi in 0..self.children.len() {
            let entries: Vec<Value> = saved
                .iter()
                .enumerate()
                .filter(|&(fi, _)| self.owner.get(fi) == Some(&wi))
                .map(|(fi, p)| {
                    Value::Map(vec![
                        ("id".to_string(), fi.to_value()),
                        (
                            "partial".to_string(),
                            match p {
                                Some(p) => self.codec.encode_partial(p),
                                None => Value::Null,
                            },
                        ),
                    ])
                })
                .collect();
            self.rpc(
                wi,
                &op_frame(
                    "set_partials",
                    vec![("partials".to_string(), Value::Seq(entries))],
                ),
            )?;
        }
        Ok(())
    }

    fn clear_partials(&self) -> Result<(), EngineError> {
        for wi in 0..self.children.len() {
            self.rpc(wi, &op_frame("clear", Vec::new()))?;
        }
        Ok(())
    }

    fn into_partials(self) -> Result<Vec<P::Partial>, EngineError> {
        let collected = self.checkpoint_partials()?;
        // Orderly shutdown: `exit` then wait; `WorkerChild::drop` turns any
        // straggler into kill + wait.
        for wi in 0..self.children.len() {
            let _ = self.rpc(wi, &op_frame("exit", Vec::new()));
        }
        for child in &self.children {
            let _ = child.lock().child.wait();
        }
        collected
            .into_iter()
            .enumerate()
            .map(|(fi, p)| {
                p.ok_or_else(|| {
                    EngineError::Worker(format!("fragment {fi} has no partial at the fixpoint"))
                })
            })
            .collect()
    }
}
