//! A block-centric engine in the style of Blogel (B-compute): every block
//! (fragment) runs a *batch* local computation per superstep and exchanges
//! messages addressed to vertices of other blocks.
//!
//! The crucial difference to GRAPE is that there is no incremental
//! evaluation: each superstep re-runs the block's batch logic over the whole
//! fragment and typically re-ships every border value it computed, not only
//! the changed ones — which is where the paper's factor-of-a-few gaps in both
//! time and communication come from.

use std::time::Instant;

use parking_lot::Mutex;

use grape_core::metrics::{EngineMetrics, SuperstepMetrics};
use grape_graph::types::VertexId;
use grape_partition::fragment::{Fragment, Fragmentation};

/// One lock-protected buffer of vertex-addressed messages per block.
type MessageQueues<M> = Vec<Mutex<Vec<(VertexId, M)>>>;

/// Message outbox of a block.
#[derive(Debug)]
pub struct BlockContext<M> {
    messages: Vec<(VertexId, M)>,
}

impl<M> BlockContext<M> {
    /// Sends `message` to (the block owning) vertex `to`.
    pub fn send(&mut self, to: VertexId, message: M) {
        self.messages.push((to, message));
    }
}

/// How block-to-block messages addressed to a vertex are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRouting {
    /// Deliver to the block owning the vertex (SSSP, CC).
    Owner,
    /// Deliver to every block holding the vertex as an outer copy (Sim).
    OuterHolders,
    /// Deliver to every block holding the vertex in any role (CF).
    All,
}

/// A block program (Blogel's B-compute).
pub trait BlockProgram: Send + Sync {
    /// The query.
    type Query: Clone + Send + Sync;
    /// Per-block state.
    type BlockState: Clone + Send;
    /// Message type (addressed to vertices).
    type Message: Clone + Send + Sync;
    /// Final output.
    type Output;

    /// Program name for metrics.
    fn name(&self) -> &str;

    /// How messages are routed (see [`BlockRouting`]).
    fn routing(&self) -> BlockRouting {
        BlockRouting::Owner
    }

    /// Initial state of a block.
    fn init(&self, query: &Self::Query, frag: &Fragment) -> Self::BlockState;

    /// One superstep of one block: consume the inbox, recompute, emit
    /// messages.  The run terminates when no block emits a message.
    fn compute(
        &self,
        query: &Self::Query,
        frag: &Fragment,
        state: &mut Self::BlockState,
        superstep: usize,
        messages: &[(VertexId, Self::Message)],
        ctx: &mut BlockContext<Self::Message>,
    );

    /// Collects the output from all block states.
    fn output(&self, query: &Self::Query, states: Vec<Self::BlockState>) -> Self::Output;

    /// Approximate wire size of a message.
    fn message_size(&self, _message: &Self::Message) -> usize {
        std::mem::size_of::<Self::Message>()
    }

    /// Safety limit on supersteps.
    fn max_supersteps(&self) -> usize {
        100_000
    }
}

/// The block-centric engine.
#[derive(Debug, Clone)]
pub struct BlockCentricEngine {
    /// Number of worker threads (blocks are distributed round-robin).
    pub num_workers: usize,
}

impl BlockCentricEngine {
    /// Creates an engine with `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        BlockCentricEngine {
            num_workers: num_workers.max(1),
        }
    }

    /// Runs a block program over a fragmentation.
    pub fn run<P: BlockProgram>(
        &self,
        fragmentation: &Fragmentation,
        program: &P,
        query: &P::Query,
    ) -> (P::Output, EngineMetrics) {
        let start = Instant::now();
        let m = fragmentation.num_fragments();
        let mut metrics = EngineMetrics {
            program: format!("block-centric-{}", program.name()),
            workers: self.num_workers,
            fragments: m,
            ..Default::default()
        };
        let fragments = fragmentation.fragments();
        let gp = fragmentation.gp();
        let mut states: Vec<P::BlockState> =
            fragments.iter().map(|f| program.init(query, f)).collect();
        let mut inboxes: Vec<Vec<(VertexId, P::Message)>> = vec![Vec::new(); m];
        let mut superstep = 0usize;

        loop {
            let step_start = Instant::now();
            let active: Vec<bool> = (0..m)
                .map(|i| superstep == 0 || !inboxes[i].is_empty())
                .collect();
            let active_count = active.iter().filter(|&&a| a).count();
            if active_count == 0 || superstep >= program.max_supersteps() {
                break;
            }
            let incoming: Vec<Vec<(VertexId, P::Message)>> =
                std::mem::replace(&mut inboxes, vec![Vec::new(); m]);
            let state_slots: Vec<Mutex<Option<P::BlockState>>> =
                states.into_iter().map(|s| Mutex::new(Some(s))).collect();
            let outboxes: MessageQueues<P::Message> =
                (0..m).map(|_| Mutex::new(Vec::new())).collect();

            std::thread::scope(|scope| {
                for w in 0..self.num_workers {
                    let active = &active;
                    let incoming = &incoming;
                    let state_slots = &state_slots;
                    let outboxes = &outboxes;
                    scope.spawn(move || {
                        for i in (w..m).step_by(self.num_workers) {
                            if !active[i] {
                                continue;
                            }
                            let mut ctx = BlockContext {
                                messages: Vec::new(),
                            };
                            let mut slot = state_slots[i].lock();
                            let state = slot.as_mut().expect("state present");
                            program.compute(
                                query,
                                &fragments[i],
                                state,
                                superstep,
                                &incoming[i],
                                &mut ctx,
                            );
                            *outboxes[i].lock() = ctx.messages;
                        }
                    });
                }
            });
            states = state_slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("state present"))
                .collect();

            // Route messages according to the program's routing mode.
            let mut routed = 0usize;
            let mut bytes = 0usize;
            for (from, outbox) in outboxes.into_iter().enumerate() {
                for (to, msg) in outbox.into_inner() {
                    let mut dests: Vec<usize> = match program.routing() {
                        BlockRouting::Owner => vec![gp.owner(to)],
                        BlockRouting::OuterHolders => {
                            gp.outer_holders(to).iter().map(|&d| d as usize).collect()
                        }
                        BlockRouting::All => {
                            let mut d: Vec<usize> =
                                gp.outer_holders(to).iter().map(|&x| x as usize).collect();
                            d.push(gp.owner(to));
                            d.sort_unstable();
                            d.dedup();
                            d
                        }
                    };
                    dests.retain(|&d| d != from);
                    for dest in dests {
                        routed += 1;
                        bytes += program.message_size(&msg) + std::mem::size_of::<VertexId>();
                        inboxes[dest].push((to, msg.clone()));
                    }
                }
            }
            metrics.push_superstep(SuperstepMetrics {
                superstep,
                active_fragments: active_count,
                messages: routed,
                bytes,
                duration: step_start.elapsed(),
            });
            superstep += 1;
        }
        let output = program.output(query, states);
        metrics.total_time = start.elapsed();
        (output, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::builder::GraphBuilder;
    use grape_partition::edge_cut::RangeEdgeCut;
    use grape_partition::strategy::PartitionStrategy;

    /// Toy block program: each block floods the minimum global id it has seen
    /// for each of its border vertices.
    struct BlockMin;

    impl BlockProgram for BlockMin {
        type Query = ();
        type BlockState = std::collections::HashMap<VertexId, VertexId>;
        type Message = VertexId;
        type Output = std::collections::HashMap<VertexId, VertexId>;

        fn name(&self) -> &str {
            "block-min"
        }

        fn init(&self, _q: &(), frag: &Fragment) -> Self::BlockState {
            frag.all_locals()
                .map(|l| (frag.global_of(l), frag.global_of(l)))
                .collect()
        }

        fn compute(
            &self,
            _q: &(),
            frag: &Fragment,
            state: &mut Self::BlockState,
            _superstep: usize,
            messages: &[(VertexId, VertexId)],
            ctx: &mut BlockContext<VertexId>,
        ) {
            let before = state.clone();
            for (v, value) in messages {
                if let Some(entry) = state.get_mut(v) {
                    if value < entry {
                        *entry = *value;
                    }
                }
            }
            // Full local propagation (batch recomputation, Blogel-style).
            let mut changed = true;
            while changed {
                changed = false;
                for l in frag.all_locals() {
                    let v = frag.global_of(l);
                    let mine = state[&v];
                    for n in frag.out_edges(l) {
                        let t = frag.global_of(n.target as u32);
                        if mine < state[&t] {
                            state.insert(t, mine);
                            changed = true;
                        }
                    }
                }
            }
            // Ship the changed border values, one message per incident cross
            // edge (block-to-block messages travel per edge, as in Blogel).
            for &l in frag.out_border_locals() {
                let v = frag.global_of(l);
                if state[&v] < before[&v] {
                    let copies = frag.in_edges(l).len().max(1);
                    for _ in 0..copies {
                        ctx.send(v, state[&v]);
                    }
                }
            }
        }

        fn output(&self, _q: &(), states: Vec<Self::BlockState>) -> Self::Output {
            let mut out = std::collections::HashMap::new();
            for s in states {
                for (v, value) in s {
                    out.entry(v)
                        .and_modify(|e: &mut VertexId| *e = (*e).min(value))
                        .or_insert(value);
                }
            }
            out
        }

        fn max_supersteps(&self) -> usize {
            50
        }
    }

    #[test]
    fn block_min_converges_on_a_ring() {
        let mut b = GraphBuilder::directed();
        for v in 0..12u64 {
            b.push_edge(grape_graph::types::Edge::unweighted(v, (v + 1) % 12));
        }
        let g = b.build();
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let engine = BlockCentricEngine::new(3);
        let (out, metrics) = engine.run(&frag, &BlockMin, &());
        assert!(out.values().all(|&v| v == 0));
        assert!(metrics.supersteps >= 2);
    }

    #[test]
    fn terminates_without_hitting_the_superstep_limit() {
        let mut b = GraphBuilder::directed();
        for v in 0..20u64 {
            b.push_edge(grape_graph::types::Edge::unweighted(v, (v + 1) % 20));
        }
        let g = b.build();
        let frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        let (out, metrics) = BlockCentricEngine::new(2).run(&frag, &BlockMin, &());
        assert!(out.values().all(|&v| v == 0));
        assert!(
            metrics.supersteps < 20,
            "took {} supersteps",
            metrics.supersteps
        );
        assert!(metrics.total_messages > 0);
    }
}
