//! Block programs (Blogel-style B-compute) for the five query classes.
//!
//! The programs mirror their GRAPE counterparts but without incremental
//! evaluation: every superstep re-runs the batch computation over the whole
//! block, seeded with the border values received so far.  SubIso, whose
//! Blogel version exchanges neighborhoods rather than iterating, is provided
//! as the standalone runner [`run_block_subiso`].

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use parking_lot::Mutex;

use grape_core::metrics::{EngineMetrics, SuperstepMetrics};
use grape_graph::pattern::Pattern;
use grape_graph::types::VertexId;
use grape_partition::fragment::{Fragment, Fragmentation};

use grape_algorithms::cf::sequential::{initial_factors, sgd_step, CfModel};
use grape_algorithms::cf::CfQuery;
use grape_algorithms::sim::pie::{compute_cnt, init_sim, initial_violations, propagate};
use grape_algorithms::sim::SimQuery;
use grape_algorithms::sssp::SsspQuery;
use grape_algorithms::subiso::vf2::subgraph_isomorphism_filtered;

use super::engine::{BlockContext, BlockProgram, BlockRouting};

/// Sends `value` for border vertex `l`, once per incident local cross edge
/// (block messages travel per edge, as in Blogel's V/B-compute model).
fn send_per_cross_edge<M: Clone>(frag: &Fragment, l: u32, value: M, ctx: &mut BlockContext<M>) {
    let copies = frag.in_edges(l).len().max(1);
    let v = frag.global_of(l);
    for _ in 0..copies {
        ctx.send(v, value.clone());
    }
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

/// Blogel-style SSSP: every superstep re-runs Dijkstra over the whole block
/// seeded with all currently known distances.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockSssp;

impl BlockProgram for BlockSssp {
    type Query = SsspQuery;
    type BlockState = (Vec<f64>, Vec<VertexId>);
    type Message = f64;
    type Output = HashMap<VertexId, f64>;

    fn name(&self) -> &str {
        "sssp"
    }

    fn init(&self, query: &SsspQuery, frag: &Fragment) -> Self::BlockState {
        let mut dist = vec![f64::INFINITY; frag.num_local()];
        if let Some(l) = frag.local_of(query.source) {
            dist[l as usize] = 0.0;
        }
        (dist, frag.all_locals().map(|l| frag.global_of(l)).collect())
    }

    fn compute(
        &self,
        _query: &SsspQuery,
        frag: &Fragment,
        state: &mut Self::BlockState,
        _superstep: usize,
        messages: &[(VertexId, f64)],
        ctx: &mut BlockContext<f64>,
    ) {
        let (dist, _) = state;
        let before = dist.clone();
        for (v, d) in messages {
            if let Some(l) = frag.local_of(*v) {
                if *d < dist[l as usize] {
                    dist[l as usize] = *d;
                }
            }
        }
        // Batch recomputation: full multi-source Dijkstra over the block.
        let mut heap = std::collections::BinaryHeap::new();
        for l in frag.all_locals() {
            if dist[l as usize].is_finite() {
                heap.push(grape_algorithms::util::MinDist {
                    dist: dist[l as usize],
                    vertex: l,
                });
            }
        }
        while let Some(grape_algorithms::util::MinDist { dist: d, vertex: u }) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for n in frag.out_edges(u) {
                let t = n.target as u32;
                let alt = d + n.weight;
                if alt < dist[t as usize] {
                    dist[t as usize] = alt;
                    heap.push(grape_algorithms::util::MinDist {
                        dist: alt,
                        vertex: t,
                    });
                }
            }
        }
        for &l in frag.out_border_locals() {
            if dist[l as usize] < before[l as usize] {
                send_per_cross_edge(frag, l, dist[l as usize], ctx);
            }
        }
    }

    fn output(&self, _query: &SsspQuery, states: Vec<Self::BlockState>) -> Self::Output {
        let mut out = HashMap::new();
        for (dist, globals) in states {
            for (d, v) in dist.into_iter().zip(globals) {
                if d.is_finite() {
                    out.entry(v)
                        .and_modify(|e: &mut f64| *e = e.min(d))
                        .or_insert(d);
                }
            }
        }
        out
    }
}

/// Runs Blogel-style SSSP and returns the global distance map plus metrics.
pub fn run_block_sssp(
    fragmentation: &Fragmentation,
    query: &SsspQuery,
    workers: usize,
) -> (HashMap<VertexId, f64>, EngineMetrics) {
    super::engine::BlockCentricEngine::new(workers).run(fragmentation, &BlockSssp, query)
}

// ---------------------------------------------------------------------------
// CC
// ---------------------------------------------------------------------------

/// Blogel-style CC: full local label propagation each superstep.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockCc;

impl BlockProgram for BlockCc {
    type Query = ();
    type BlockState = (Vec<VertexId>, Vec<VertexId>);
    type Message = VertexId;
    type Output = HashMap<VertexId, VertexId>;

    fn name(&self) -> &str {
        "cc"
    }

    fn init(&self, _q: &(), frag: &Fragment) -> Self::BlockState {
        let cids: Vec<VertexId> = frag.all_locals().map(|l| frag.global_of(l)).collect();
        let globals = cids.clone();
        (cids, globals)
    }

    fn compute(
        &self,
        _q: &(),
        frag: &Fragment,
        state: &mut Self::BlockState,
        _superstep: usize,
        messages: &[(VertexId, VertexId)],
        ctx: &mut BlockContext<VertexId>,
    ) {
        let (cids, _) = state;
        let before = cids.clone();
        for (v, cid) in messages {
            if let Some(l) = frag.local_of(*v) {
                if *cid < cids[l as usize] {
                    cids[l as usize] = *cid;
                }
            }
        }
        // Batch recomputation: propagate minima over the whole block.
        let mut changed = true;
        while changed {
            changed = false;
            for l in frag.all_locals() {
                let mine = cids[l as usize];
                for n in frag.out_edges(l) {
                    let t = n.target as usize;
                    if mine < cids[t] {
                        cids[t] = mine;
                        changed = true;
                    } else if cids[t] < mine {
                        cids[l as usize] = cids[t];
                        changed = true;
                    }
                }
            }
        }
        for &l in frag.out_border_locals() {
            if cids[l as usize] < before[l as usize] {
                send_per_cross_edge(frag, l, cids[l as usize], ctx);
            }
        }
    }

    fn output(&self, _q: &(), states: Vec<Self::BlockState>) -> Self::Output {
        let mut out = HashMap::new();
        for (cids, globals) in states {
            for (cid, v) in cids.into_iter().zip(globals) {
                out.entry(v)
                    .and_modify(|e: &mut VertexId| *e = (*e).min(cid))
                    .or_insert(cid);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sim
// ---------------------------------------------------------------------------

/// Blogel-style graph simulation: every superstep the block recomputes its
/// simulation relation from scratch with the accumulated border knowledge.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockSim;

/// State of [`BlockSim`].
#[derive(Debug, Clone)]
pub struct BlockSimState {
    received_false: HashSet<(u32, u32)>,
    sent: HashSet<(u32, u32)>,
    sim: Vec<Vec<bool>>,
    globals: Vec<VertexId>,
    num_inner: usize,
}

impl BlockProgram for BlockSim {
    type Query = SimQuery;
    type BlockState = BlockSimState;
    type Message = (u32, bool);
    type Output = Vec<Vec<VertexId>>;

    fn name(&self) -> &str {
        "sim"
    }

    fn routing(&self) -> BlockRouting {
        BlockRouting::OuterHolders
    }

    fn init(&self, query: &SimQuery, frag: &Fragment) -> BlockSimState {
        BlockSimState {
            received_false: HashSet::new(),
            sent: HashSet::new(),
            sim: vec![vec![false; frag.num_local()]; query.pattern.num_nodes()],
            globals: frag.all_locals().map(|l| frag.global_of(l)).collect(),
            num_inner: frag.num_inner(),
        }
    }

    fn compute(
        &self,
        query: &SimQuery,
        frag: &Fragment,
        state: &mut BlockSimState,
        _superstep: usize,
        messages: &[(VertexId, (u32, bool))],
        ctx: &mut BlockContext<(u32, bool)>,
    ) {
        let pattern = &query.pattern;
        for (v, (u, value)) in messages {
            if *value {
                continue;
            }
            if let Some(l) = frag.local_of(*v) {
                state.received_false.insert((*u, l));
            }
        }
        // Full recomputation with the accumulated knowledge.
        let mut sim = init_sim(frag, pattern, false);
        let mut seeds = Vec::new();
        for &(u, l) in &state.received_false {
            if sim[u as usize][l as usize] {
                sim[u as usize][l as usize] = false;
                seeds.push((u, l));
            }
        }
        let mut cnt = compute_cnt(frag, pattern, &sim);
        let in_border: HashSet<u32> = frag.in_border_locals().iter().copied().collect();
        let mut worklist = initial_violations(frag, pattern, &mut sim, &cnt);
        worklist.extend(seeds);
        propagate(frag, pattern, &mut sim, &mut cnt, worklist, &in_border);
        state.sim = sim;
        for &l in frag.in_border_locals() {
            for u in 0..pattern.num_nodes() as u32 {
                if frag.label(l) == pattern.label(u)
                    && !state.sim[u as usize][l as usize]
                    && state.sent.insert((u, l))
                {
                    ctx.send(frag.global_of(l), (u, false));
                }
            }
        }
    }

    fn output(&self, query: &SimQuery, states: Vec<BlockSimState>) -> Vec<Vec<VertexId>> {
        let q = query.pattern.num_nodes();
        let mut matches: Vec<Vec<VertexId>> = vec![Vec::new(); q];
        for state in states {
            for (u, matches_u) in matches.iter_mut().enumerate().take(q) {
                for l in 0..state.num_inner {
                    if state.sim[u][l] {
                        matches_u.push(state.globals[l]);
                    }
                }
            }
        }
        for m in &mut matches {
            m.sort_unstable();
            m.dedup();
        }
        if matches.iter().any(|m| m.is_empty()) {
            matches = vec![Vec::new(); q];
        }
        matches
    }

    fn message_size(&self, _message: &(u32, bool)) -> usize {
        5
    }
}

// ---------------------------------------------------------------------------
// CF
// ---------------------------------------------------------------------------

/// Blogel-style CF: full local SGD epoch per superstep, all border factor
/// vectors exchanged every round.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockCf;

/// State of [`BlockCf`].
#[derive(Debug, Clone)]
pub struct BlockCfState {
    factors: Vec<Vec<f64>>,
    epoch: usize,
    globals: Vec<VertexId>,
}

impl BlockProgram for BlockCf {
    type Query = CfQuery;
    type BlockState = BlockCfState;
    type Message = Vec<f64>;
    type Output = CfModel;

    fn name(&self) -> &str {
        "cf"
    }

    fn routing(&self) -> BlockRouting {
        BlockRouting::All
    }

    fn init(&self, query: &CfQuery, frag: &Fragment) -> BlockCfState {
        BlockCfState {
            factors: frag
                .all_locals()
                .map(|l| initial_factors(frag.global_of(l), query.num_factors))
                .collect(),
            epoch: 0,
            globals: frag.all_locals().map(|l| frag.global_of(l)).collect(),
        }
    }

    fn compute(
        &self,
        query: &CfQuery,
        frag: &Fragment,
        state: &mut BlockCfState,
        _superstep: usize,
        messages: &[(VertexId, Vec<f64>)],
        ctx: &mut BlockContext<Vec<f64>>,
    ) {
        for (v, factors) in messages {
            if let Some(l) = frag.local_of(*v) {
                state.factors[l as usize] = factors.clone();
            }
        }
        if state.epoch >= query.epochs {
            return;
        }
        state.epoch += 1;
        for l in frag.inner_locals() {
            for n in frag.out_edges(l) {
                let mut user = state.factors[l as usize].clone();
                let item = &mut state.factors[n.target as usize];
                sgd_step(
                    &mut user,
                    item,
                    n.weight,
                    query.learning_rate,
                    query.regularization,
                );
                state.factors[l as usize] = user;
            }
        }
        if state.epoch < query.epochs {
            let mut border: Vec<u32> = frag.out_border_locals().to_vec();
            border.extend_from_slice(frag.in_border_locals());
            border.sort_unstable();
            border.dedup();
            for l in border {
                send_per_cross_edge(frag, l, state.factors[l as usize].clone(), ctx);
            }
        }
    }

    fn output(&self, _query: &CfQuery, states: Vec<BlockCfState>) -> CfModel {
        let mut factors = HashMap::new();
        for state in states {
            for (f, v) in state.factors.into_iter().zip(state.globals) {
                factors.entry(v).or_insert(f);
            }
        }
        CfModel::new(factors)
    }

    fn message_size(&self, message: &Vec<f64>) -> usize {
        message.len() * std::mem::size_of::<f64>()
    }
}

// ---------------------------------------------------------------------------
// SubIso (standalone runner)
// ---------------------------------------------------------------------------

/// Blogel-style subgraph isomorphism: every block receives the
/// `d_Q`-neighborhood of its border (same exchange as GRAPE, counted as
/// communication) but enumerates every match containing *any* of its inner
/// vertices, leaving duplicate elimination to the coordinator — the extra
/// enumeration and shipping is what makes it slower than the GRAPE program.
pub fn run_block_subiso(
    fragmentation: &Fragmentation,
    pattern: &Pattern,
    max_matches_per_block: usize,
    workers: usize,
) -> (Vec<Vec<VertexId>>, EngineMetrics) {
    let start = Instant::now();
    let m = fragmentation.num_fragments();
    let mut metrics = EngineMetrics {
        program: "block-centric-subiso".to_string(),
        workers,
        fragments: m,
        ..Default::default()
    };
    let hops = pattern.diameter();
    let mut expanded = Vec::with_capacity(m);
    for i in 0..m {
        let (frag, shipped_v, shipped_e) = fragmentation.expand_fragment(i, hops);
        metrics.add_expansion(shipped_v * 24 + shipped_e * 24);
        expanded.push(frag);
    }
    let results: Vec<Mutex<Vec<Vec<VertexId>>>> = (0..m).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        for w in 0..workers.max(1) {
            let expanded = &expanded;
            let results = &results;
            s.spawn(move || {
                for i in (w..m).step_by(workers.max(1)) {
                    let frag = &expanded[i];
                    let local = subgraph_isomorphism_filtered(
                        frag.local_graph(),
                        pattern,
                        max_matches_per_block,
                        &|_anchor| true,
                    );
                    let translated: Vec<Vec<VertexId>> = local
                        .into_iter()
                        .map(|mm| mm.into_iter().map(|l| frag.global_of(l as u32)).collect())
                        .filter(|mm: &Vec<VertexId>| {
                            mm.iter().any(|&v| {
                                frag.local_of(v).map(|l| frag.is_inner(l)).unwrap_or(false)
                            })
                        })
                        .collect();
                    *results[i].lock() = translated;
                }
            });
        }
    });
    // Coordinator-side duplicate elimination: every duplicate shipped counts.
    let mut all: Vec<Vec<VertexId>> = Vec::new();
    let mut shipped = 0usize;
    for r in results {
        let list = r.into_inner();
        shipped += list.len();
        all.extend(list);
    }
    metrics.push_superstep(SuperstepMetrics {
        superstep: 0,
        active_fragments: m,
        messages: shipped,
        bytes: shipped * pattern.num_nodes() * std::mem::size_of::<VertexId>(),
        duration: start.elapsed(),
    });
    all.sort_unstable();
    all.dedup();
    metrics.supersteps = 2;
    metrics.total_time = start.elapsed();
    (all, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_centric::engine::BlockCentricEngine;
    use grape_algorithms::cc::sequential::connected_components;
    use grape_algorithms::sim::sequential::graph_simulation;
    use grape_algorithms::sssp::sequential::dijkstra;
    use grape_algorithms::subiso::vf2::subgraph_isomorphism;
    use grape_graph::generators::{bipartite_ratings, labeled_kg, power_law, road_grid};
    use grape_partition::edge_cut::HashEdgeCut;
    use grape_partition::metis_like::MetisLike;
    use grape_partition::strategy::PartitionStrategy;

    #[test]
    fn block_sssp_matches_dijkstra() {
        let g = road_grid(10, 10, 1);
        let frag = MetisLike::new(4).partition(&g).unwrap();
        let (dist, metrics) = run_block_sssp(&frag, &SsspQuery::new(0), 4);
        let expected = dijkstra(&g, 0);
        for v in g.vertices() {
            let got = dist.get(&v).copied().unwrap_or(f64::INFINITY);
            assert!((got - expected[v as usize]).abs() < 1e-9, "vertex {v}");
        }
        assert!(metrics.supersteps >= 2);
    }

    #[test]
    fn block_cc_matches_union_find() {
        let g = power_law(200, 450, 0, 3).to_undirected();
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let (labels, _) = BlockCentricEngine::new(2).run(&frag, &BlockCc, &());
        let expected = connected_components(&g);
        for v in g.vertices() {
            assert_eq!(labels[&v], expected[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn block_sim_matches_sequential() {
        let g = labeled_kg(200, 800, 4, 2, 5);
        let alphabet: Vec<u32> = (1..=4).collect();
        let pattern = Pattern::random(3, 4, &alphabet, 31);
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let (matches, _) =
            BlockCentricEngine::new(2).run(&frag, &BlockSim, &SimQuery::new(pattern.clone()));
        let expected = graph_simulation(&g, &pattern);
        assert_eq!(matches, expected);
    }

    #[test]
    fn block_cf_learns_ratings() {
        let data = bipartite_ratings(40, 20, 400, 4, 11);
        let frag = HashEdgeCut::new(3).partition(&data.graph).unwrap();
        let query = CfQuery {
            epochs: 6,
            num_factors: 4,
            ..Default::default()
        };
        let (model, _) = BlockCentricEngine::new(2).run(&frag, &BlockCf, &query);
        assert!(
            model.rmse(&data.graph) < 1.2,
            "rmse {}",
            model.rmse(&data.graph)
        );
    }

    #[test]
    fn block_subiso_matches_vf2() {
        let g = labeled_kg(120, 400, 3, 2, 7);
        let alphabet: Vec<u32> = (1..=3).collect();
        let pattern = Pattern::random(3, 3, &alphabet, 13);
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let (matches, metrics) = run_block_subiso(&frag, &pattern, usize::MAX, 2);
        let mut expected = subgraph_isomorphism(&g, &pattern, usize::MAX);
        expected.sort_unstable();
        assert_eq!(matches, expected);
        assert!(metrics.expansion_bytes > 0);
    }

    #[test]
    fn block_sssp_does_more_local_work_than_grape_but_same_answer() {
        use grape_core::session::GrapeSession;

        let g = road_grid(12, 12, 9);
        let frag = MetisLike::new(4).partition(&g).unwrap();
        let (block_dist, block_metrics) = run_block_sssp(&frag, &SsspQuery::new(0), 4);
        let grape = GrapeSession::with_workers(4)
            .run(&frag, &grape_algorithms::sssp::Sssp, &SsspQuery::new(0))
            .unwrap();
        for (v, d) in &block_dist {
            assert!((grape.output.distance(*v).unwrap() - d).abs() < 1e-9);
        }
        // Blogel-style messaging (per cross edge, no coordinator dedup) ships
        // at least as much as GRAPE.
        assert!(block_metrics.total_bytes >= grape.metrics.total_bytes);
    }
}
