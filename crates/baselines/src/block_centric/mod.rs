//! Block-centric (Blogel-style) baseline: a B-compute engine over the same
//! fragments GRAPE uses, plus block programs for SSSP, CC, Sim and CF and the
//! standalone SubIso runner.

pub mod engine;
pub mod programs;

pub use engine::{BlockCentricEngine, BlockContext, BlockProgram, BlockRouting};
pub use programs::{run_block_sssp, run_block_subiso, BlockCc, BlockCf, BlockSim, BlockSssp};
