//! # grape-baselines
//!
//! The comparison systems of the paper's evaluation (Section 7), rebuilt on
//! the same graph/partition substrate so that response time, supersteps and
//! communication volume are directly comparable with the GRAPE engine:
//!
//! * [`vertex_centric`] — a synchronous Pregel/Giraph-style engine
//!   ("think like a vertex"), also standing in for synchronous GraphLab,
//!   with vertex programs for SSSP, CC, Sim, SubIso and CF,
//! * [`block_centric`] — a Blogel-style B-compute engine that runs batch
//!   computations per block and exchanges per-edge messages between blocks,
//!   with block programs for the same query classes.
//!
//! Both engines report [`grape_core::metrics::EngineMetrics`], which is what
//! the benchmark harness prints for Table 1 and Figures 6, 8 and 9.

pub mod block_centric;
pub mod vertex_centric;

pub use block_centric::{BlockCentricEngine, BlockProgram};
pub use vertex_centric::{VertexCentricEngine, VertexProgram};
