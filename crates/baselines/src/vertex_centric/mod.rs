//! Vertex-centric ("think like a vertex") baseline: a Pregel/Giraph-style
//! synchronous engine plus vertex programs for SSSP, CC, Sim, SubIso and CF.

pub mod engine;
pub mod programs;

pub use engine::{VertexCentricEngine, VertexContext, VertexProgram};
pub use programs::{VertexCc, VertexCf, VertexSim, VertexSssp, VertexSubIso, VertexSubIsoQuery};
