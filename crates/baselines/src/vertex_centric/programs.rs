//! Vertex programs for the five query classes of the paper's evaluation.
//!
//! These are the "recasted" algorithms the paper contrasts with PIE programs
//! (Fig. 10 shows the Giraph SSSP program): the sequential logic is broken
//! into per-vertex compute functions and everything flows through
//! vertex-to-vertex messages — which is exactly why the vertex-centric
//! systems need `O(diameter)` supersteps and ship orders of magnitude more
//! data on graphs like road networks.

use std::collections::HashMap;

use grape_graph::graph::Graph;
use grape_graph::pattern::Pattern;
use grape_graph::types::VertexId;

use grape_algorithms::cf::sequential::{initial_factors, sgd_step, CfModel};
use grape_algorithms::cf::CfQuery;
use grape_algorithms::sssp::SsspQuery;

use super::engine::{VertexContext, VertexProgram};

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

/// The classic Pregel SSSP vertex program.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexSssp;

impl VertexProgram for VertexSssp {
    type Query = SsspQuery;
    type VertexValue = f64;
    type Message = f64;
    type Output = Vec<f64>;

    fn name(&self) -> &str {
        "sssp"
    }

    fn init(&self, query: &SsspQuery, _graph: &Graph, v: VertexId) -> f64 {
        if v == query.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn compute(
        &self,
        query: &SsspQuery,
        graph: &Graph,
        v: VertexId,
        value: &mut f64,
        superstep: usize,
        messages: &[f64],
        ctx: &mut VertexContext<f64>,
    ) {
        let incoming = messages.iter().copied().fold(f64::INFINITY, f64::min);
        let improved = incoming < *value;
        if improved {
            *value = incoming;
        }
        let is_source_start = superstep == 0 && v == query.source;
        if improved || is_source_start {
            for n in graph.out_neighbors(v) {
                ctx.send(n.target, *value + n.weight);
            }
        }
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a.min(*b))
    }

    fn output(&self, _query: &SsspQuery, _graph: &Graph, values: Vec<f64>) -> Vec<f64> {
        values
    }
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

/// HashMin connected components: every vertex floods the smallest id it has
/// seen to all neighbours (both directions, since CC is over the undirected
/// graph).
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexCc;

impl VertexProgram for VertexCc {
    type Query = ();
    type VertexValue = VertexId;
    type Message = VertexId;
    type Output = Vec<VertexId>;

    fn name(&self) -> &str {
        "cc"
    }

    fn init(&self, _q: &(), _graph: &Graph, v: VertexId) -> VertexId {
        v
    }

    fn compute(
        &self,
        _q: &(),
        graph: &Graph,
        v: VertexId,
        value: &mut VertexId,
        superstep: usize,
        messages: &[VertexId],
        ctx: &mut VertexContext<VertexId>,
    ) {
        let best = messages.iter().copied().min().unwrap_or(*value).min(*value);
        if best < *value || superstep == 0 {
            *value = best;
            for n in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                ctx.send(n.target, *value);
            }
        }
    }

    fn combine(&self, a: &VertexId, b: &VertexId) -> Option<VertexId> {
        Some(*a.min(b))
    }

    fn output(&self, _q: &(), _graph: &Graph, values: Vec<VertexId>) -> Vec<VertexId> {
        values
    }
}

// ---------------------------------------------------------------------------
// Graph simulation
// ---------------------------------------------------------------------------

/// Vertex-centric graph simulation: every vertex keeps a Boolean per query
/// node and the last known vectors of its out-neighbours; whenever its own
/// vector shrinks it notifies its *in*-neighbours (they depend on it).
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexSim;

/// Per-vertex state of [`VertexSim`].
#[derive(Debug, Clone, Default)]
pub struct VertexSimValue {
    /// `sim[u]`: does this vertex currently simulate query node `u`?
    pub sim: Vec<bool>,
    /// Last received vectors of the out-neighbours.
    neighbor_sim: HashMap<VertexId, Vec<bool>>,
}

impl VertexProgram for VertexSim {
    type Query = Pattern;
    type VertexValue = VertexSimValue;
    type Message = (VertexId, Vec<bool>);
    type Output = Vec<Vec<VertexId>>;

    fn name(&self) -> &str {
        "sim"
    }

    fn init(&self, pattern: &Pattern, graph: &Graph, v: VertexId) -> VertexSimValue {
        let sim = (0..pattern.num_nodes() as u32)
            .map(|u| graph.vertex_label(v) == pattern.label(u))
            .collect();
        VertexSimValue {
            sim,
            neighbor_sim: HashMap::new(),
        }
    }

    fn compute(
        &self,
        pattern: &Pattern,
        graph: &Graph,
        v: VertexId,
        value: &mut VertexSimValue,
        superstep: usize,
        messages: &[(VertexId, Vec<bool>)],
        ctx: &mut VertexContext<(VertexId, Vec<bool>)>,
    ) {
        for (from, vector) in messages {
            value.neighbor_sim.insert(*from, vector.clone());
        }
        // Re-evaluate the simulation condition: optimistic about neighbours
        // whose vector has not arrived yet (they start label-compatible).
        let mut changed = false;
        for u in 0..pattern.num_nodes() as u32 {
            if !value.sim[u as usize] {
                continue;
            }
            let ok = pattern.children(u).iter().all(|&c| {
                graph
                    .out_neighbors(v)
                    .iter()
                    .any(|n| match value.neighbor_sim.get(&n.target) {
                        Some(vec) => vec[c as usize],
                        None => graph.vertex_label(n.target) == pattern.label(c),
                    })
            });
            if !ok {
                value.sim[u as usize] = false;
                changed = true;
            }
        }
        // Broadcast the vector to in-neighbours when it shrank (or initially,
        // so everyone learns the label-based starting point).
        if changed || superstep == 0 {
            for n in graph.in_neighbors(v) {
                ctx.send(n.target, (v, value.sim.clone()));
            }
        }
    }

    fn output(
        &self,
        pattern: &Pattern,
        graph: &Graph,
        values: Vec<VertexSimValue>,
    ) -> Vec<Vec<VertexId>> {
        let q = pattern.num_nodes();
        let mut matches: Vec<Vec<VertexId>> = vec![Vec::new(); q];
        for (v, value) in values.iter().enumerate() {
            for (u, matches_u) in matches.iter_mut().enumerate().take(q) {
                if value.sim[u] {
                    matches_u.push(v as VertexId);
                }
            }
        }
        let _ = graph;
        if matches.iter().any(|m| m.is_empty()) {
            matches = vec![Vec::new(); q];
        }
        matches
    }

    fn message_size(&self, message: &(VertexId, Vec<bool>)) -> usize {
        std::mem::size_of::<VertexId>() + message.1.len()
    }
}

// ---------------------------------------------------------------------------
// Subgraph isomorphism
// ---------------------------------------------------------------------------

/// Vertex-centric subgraph isomorphism by partial-match flooding: partial
/// mappings grow one query node per superstep and travel along graph edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexSubIso;

/// Query for [`VertexSubIso`].
#[derive(Debug, Clone)]
pub struct VertexSubIsoQuery {
    /// The pattern.
    pub pattern: Pattern,
    /// Cap on complete matches collected per vertex.
    pub max_matches_per_vertex: usize,
}

/// Per-vertex state: complete matches anchored here.
#[derive(Debug, Clone, Default)]
pub struct VertexSubIsoValue {
    matches: Vec<Vec<VertexId>>,
}

impl VertexSubIso {
    fn consistent(
        graph: &Graph,
        pattern: &Pattern,
        partial: &[VertexId],
        u: u32,
        v: VertexId,
    ) -> bool {
        if graph.vertex_label(v) != pattern.label(u) || partial.contains(&v) {
            return false;
        }
        for &child in pattern.children(u) {
            if (child as usize) < partial.len() {
                let m = partial[child as usize];
                if m != VertexId::MAX && !graph.out_neighbors(v).iter().any(|n| n.target == m) {
                    return false;
                }
            }
        }
        for &parent in pattern.parents(u) {
            if (parent as usize) < partial.len() {
                let m = partial[parent as usize];
                if m != VertexId::MAX && !graph.out_neighbors(m).iter().any(|n| n.target == v) {
                    return false;
                }
            }
        }
        true
    }
}

impl VertexProgram for VertexSubIso {
    type Query = VertexSubIsoQuery;
    type VertexValue = VertexSubIsoValue;
    /// A partial mapping of query nodes `0..k` (in order) to vertices.
    type Message = Vec<VertexId>;
    type Output = Vec<Vec<VertexId>>;

    fn name(&self) -> &str {
        "subiso"
    }

    fn init(&self, _q: &VertexSubIsoQuery, _graph: &Graph, _v: VertexId) -> VertexSubIsoValue {
        VertexSubIsoValue::default()
    }

    fn compute(
        &self,
        query: &VertexSubIsoQuery,
        graph: &Graph,
        v: VertexId,
        value: &mut VertexSubIsoValue,
        superstep: usize,
        messages: &[Vec<VertexId>],
        ctx: &mut VertexContext<Vec<VertexId>>,
    ) {
        let pattern = &query.pattern;
        let q = pattern.num_nodes();
        let mut extended: Vec<Vec<VertexId>> = Vec::new();
        if superstep == 0 {
            // Seed: this vertex as the image of query node 0.
            if Self::consistent(graph, pattern, &[], 0, v) {
                extended.push(vec![v]);
            }
        }
        for partial in messages {
            let u = partial.len() as u32;
            if (u as usize) < q && Self::consistent(graph, pattern, partial, u, v) {
                let mut next = partial.clone();
                next.push(v);
                extended.push(next);
            }
        }
        for partial in extended {
            if partial.len() == q {
                if value.matches.len() < query.max_matches_per_vertex {
                    value.matches.push(partial);
                }
            } else {
                // The next query node's image must be adjacent (in either
                // direction) to some already-mapped vertex; flooding to the
                // union of the neighbourhoods of the mapped vertices covers
                // every candidate.
                for &mapped in &partial {
                    for n in graph
                        .out_neighbors(mapped)
                        .iter()
                        .chain(graph.in_neighbors(mapped))
                    {
                        ctx.send(n.target, partial.clone());
                    }
                }
            }
        }
    }

    fn output(
        &self,
        _query: &VertexSubIsoQuery,
        _graph: &Graph,
        values: Vec<VertexSubIsoValue>,
    ) -> Vec<Vec<VertexId>> {
        let mut all: Vec<Vec<VertexId>> = values.into_iter().flat_map(|v| v.matches).collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    fn message_size(&self, message: &Vec<VertexId>) -> usize {
        message.len() * std::mem::size_of::<VertexId>()
    }

    fn max_supersteps(&self) -> usize {
        64
    }
}

// ---------------------------------------------------------------------------
// Collaborative filtering
// ---------------------------------------------------------------------------

/// Vertex-centric CF: users and items alternate supersteps; users push their
/// factor vectors to the items they rated, items update and push back
/// (the built-in SGD-based CF of Giraph/GraphLab works the same way).
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexCf;

/// Per-vertex state of [`VertexCf`].
#[derive(Debug, Clone, Default)]
pub struct VertexCfValue {
    /// The factor vector.
    pub factors: Vec<f64>,
    /// Factor vectors most recently received from neighbours.
    received: HashMap<VertexId, Vec<f64>>,
}

impl VertexProgram for VertexCf {
    type Query = CfQuery;
    type VertexValue = VertexCfValue;
    type Message = (VertexId, Vec<f64>);
    type Output = CfModel;

    fn name(&self) -> &str {
        "cf"
    }

    fn init(&self, query: &CfQuery, _graph: &Graph, v: VertexId) -> VertexCfValue {
        VertexCfValue {
            factors: initial_factors(v, query.num_factors),
            received: HashMap::new(),
        }
    }

    fn compute(
        &self,
        query: &CfQuery,
        graph: &Graph,
        v: VertexId,
        value: &mut VertexCfValue,
        superstep: usize,
        messages: &[(VertexId, Vec<f64>)],
        ctx: &mut VertexContext<(VertexId, Vec<f64>)>,
    ) {
        for (from, factors) in messages {
            value.received.insert(*from, factors.clone());
        }
        let is_user = graph.out_degree(v) > 0; // ratings are user → item edges
        let epoch = superstep / 2;
        if epoch >= query.epochs {
            return;
        }
        if is_user && superstep.is_multiple_of(2) {
            // Users update against the latest item factors, then push.
            for n in graph.out_neighbors(v) {
                let mut item = value
                    .received
                    .get(&n.target)
                    .cloned()
                    .unwrap_or_else(|| initial_factors(n.target, query.num_factors));
                sgd_step(
                    &mut value.factors,
                    &mut item,
                    n.weight,
                    query.learning_rate,
                    query.regularization,
                );
            }
            for n in graph.out_neighbors(v) {
                ctx.send(n.target, (v, value.factors.clone()));
            }
        } else if !is_user && superstep % 2 == 1 {
            // Items update against the received user factors, then push back.
            for n in graph.in_neighbors(v) {
                if let Some(user) = value.received.get(&n.target) {
                    let mut user = user.clone();
                    sgd_step(
                        &mut user,
                        &mut value.factors,
                        n.weight,
                        query.learning_rate,
                        query.regularization,
                    );
                }
            }
            for n in graph.in_neighbors(v) {
                ctx.send(n.target, (v, value.factors.clone()));
            }
        }
    }

    fn output(&self, _query: &CfQuery, graph: &Graph, values: Vec<VertexCfValue>) -> CfModel {
        let mut factors = HashMap::new();
        for (v, value) in values.into_iter().enumerate() {
            let v = v as VertexId;
            if graph.out_degree(v) > 0 || graph.in_degree(v) > 0 {
                factors.insert(v, value.factors);
            }
        }
        CfModel::new(factors)
    }

    fn message_size(&self, message: &(VertexId, Vec<f64>)) -> usize {
        std::mem::size_of::<VertexId>() + message.1.len() * std::mem::size_of::<f64>()
    }

    fn max_supersteps(&self) -> usize {
        10_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_centric::engine::VertexCentricEngine;
    use grape_algorithms::cc::sequential::connected_components;
    use grape_algorithms::sim::sequential::graph_simulation;
    use grape_algorithms::sssp::sequential::dijkstra;
    use grape_algorithms::subiso::vf2::subgraph_isomorphism;
    use grape_graph::generators::{bipartite_ratings, labeled_kg, power_law, road_grid};

    #[test]
    fn vertex_sssp_matches_dijkstra() {
        let g = road_grid(8, 8, 1);
        let engine = VertexCentricEngine::new(4);
        let (dist, metrics) = engine.run(&g, &VertexSssp, &SsspQuery::new(0));
        let expected = dijkstra(&g, 0);
        for v in 0..g.num_vertices() {
            assert!((dist[v] - expected[v]).abs() < 1e-9, "vertex {v}");
        }
        // Vertex-centric needs on the order of the weighted-hop diameter.
        assert!(
            metrics.supersteps >= 14,
            "only {} supersteps",
            metrics.supersteps
        );
    }

    #[test]
    fn vertex_cc_matches_union_find() {
        let g = power_law(200, 500, 0, 2).to_undirected();
        let engine = VertexCentricEngine::new(4);
        let (labels, _) = engine.run(&g, &VertexCc, &());
        let expected = connected_components(&g);
        assert_eq!(labels, expected);
    }

    #[test]
    fn vertex_sim_matches_sequential() {
        let g = labeled_kg(150, 600, 4, 2, 3);
        let alphabet: Vec<u32> = (1..=4).collect();
        let pattern = Pattern::random(3, 4, &alphabet, 17);
        let engine = VertexCentricEngine::new(4);
        let (matches, _) = engine.run(&g, &VertexSim, &pattern);
        let expected = graph_simulation(&g, &pattern);
        assert_eq!(matches, expected);
    }

    #[test]
    fn vertex_subiso_matches_vf2() {
        let g = labeled_kg(80, 240, 3, 2, 5);
        let alphabet: Vec<u32> = (1..=3).collect();
        let pattern = Pattern::random(3, 3, &alphabet, 9);
        let engine = VertexCentricEngine::new(2);
        let query = VertexSubIsoQuery {
            pattern: pattern.clone(),
            max_matches_per_vertex: 10_000,
        };
        let (matches, _) = engine.run(&g, &VertexSubIso, &query);
        let mut expected = subgraph_isomorphism(&g, &pattern, usize::MAX);
        expected.sort_unstable();
        assert_eq!(matches, expected);
    }

    #[test]
    fn vertex_cf_learns_ratings() {
        let data = bipartite_ratings(40, 20, 400, 4, 7);
        let engine = VertexCentricEngine::new(4);
        let query = CfQuery {
            epochs: 6,
            num_factors: 4,
            ..Default::default()
        };
        let (model, metrics) = engine.run(&data.graph, &VertexCf, &query);
        assert!(
            model.rmse(&data.graph) < 1.2,
            "rmse {}",
            model.rmse(&data.graph)
        );
        assert!(metrics.supersteps >= 2 * 6);
    }

    #[test]
    fn vertex_sssp_ships_many_more_messages_than_grape() {
        use grape_core::session::GrapeSession;
        use grape_partition::metis_like::MetisLike;
        use grape_partition::strategy::PartitionStrategy;

        let g = road_grid(16, 16, 4);
        let (_, vertex_metrics) =
            VertexCentricEngine::new(4).run(&g, &VertexSssp, &SsspQuery::new(0));
        let frag = MetisLike::new(4).partition(&g).unwrap();
        let grape = GrapeSession::with_workers(4)
            .run(&frag, &grape_algorithms::sssp::Sssp, &SsspQuery::new(0))
            .unwrap();
        // The gap grows with graph size/diameter (the benches show orders of
        // magnitude); on this small grid a factor of a few already shows.
        assert!(
            vertex_metrics.total_bytes > 3 * grape.metrics.total_bytes.max(1),
            "vertex-centric {} bytes vs GRAPE {} bytes",
            vertex_metrics.total_bytes,
            grape.metrics.total_bytes
        );
        assert!(vertex_metrics.supersteps > grape.metrics.supersteps);
    }
}
