//! A synchronous vertex-centric ("think like a vertex") engine in the style
//! of Pregel / Giraph, also used to model synchronous GraphLab (the paper
//! implements both synchronously and observes nearly identical behaviour).
//!
//! Vertices are hash-partitioned across workers; each superstep runs
//! `compute` on every *active* vertex (a vertex is active in superstep 0 or
//! when it has incoming messages), and all messages are delivered at the next
//! superstep.  Only messages crossing worker boundaries count towards the
//! communication volume, mirroring how the paper measures data shipment.

use std::time::Instant;

use parking_lot::Mutex;

use grape_core::metrics::{EngineMetrics, SuperstepMetrics};
use grape_graph::graph::Graph;
use grape_graph::types::VertexId;

/// One lock-protected buffer of vertex-addressed messages per worker.
type MessageQueues<M> = Vec<Mutex<Vec<(VertexId, M)>>>;

/// Message outbox handed to a vertex during `compute`.
#[derive(Debug)]
pub struct VertexContext<M> {
    messages: Vec<(VertexId, M)>,
}

impl<M> VertexContext<M> {
    /// Sends `message` to vertex `to`, delivered at the next superstep.
    pub fn send(&mut self, to: VertexId, message: M) {
        self.messages.push((to, message));
    }
}

/// A vertex program (the unit of "recasting" the paper contrasts with PIE
/// programs — see Fig. 10 for the Giraph SSSP example).
pub trait VertexProgram: Send + Sync {
    /// The query.
    type Query: Clone + Send + Sync;
    /// The per-vertex state.
    type VertexValue: Clone + Send + Sync;
    /// The message type.
    type Message: Clone + Send + Sync;
    /// The collected output.
    type Output;

    /// Program name for metrics.
    fn name(&self) -> &str;

    /// Initial value of a vertex.
    fn init(&self, query: &Self::Query, graph: &Graph, v: VertexId) -> Self::VertexValue;

    /// One superstep of one vertex.
    #[allow(clippy::too_many_arguments)] // mirrors the Pregel compute() signature
    fn compute(
        &self,
        query: &Self::Query,
        graph: &Graph,
        v: VertexId,
        value: &mut Self::VertexValue,
        superstep: usize,
        messages: &[Self::Message],
        ctx: &mut VertexContext<Self::Message>,
    );

    /// Optional combiner applied to messages with the same destination.
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Collects the final output from all vertex values.
    fn output(
        &self,
        query: &Self::Query,
        graph: &Graph,
        values: Vec<Self::VertexValue>,
    ) -> Self::Output;

    /// Approximate wire size of a message.
    fn message_size(&self, _message: &Self::Message) -> usize {
        std::mem::size_of::<Self::Message>()
    }

    /// Safety limit on supersteps.
    fn max_supersteps(&self) -> usize {
        100_000
    }
}

/// The vertex-centric engine.
#[derive(Debug, Clone)]
pub struct VertexCentricEngine {
    /// Number of workers the vertices are hash-partitioned over.
    pub num_workers: usize,
}

impl VertexCentricEngine {
    /// Creates an engine with `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        VertexCentricEngine {
            num_workers: num_workers.max(1),
        }
    }

    fn worker_of(&self, v: VertexId) -> usize {
        (grape_partition::edge_cut::mix64(v) % self.num_workers as u64) as usize
    }

    /// Runs a vertex program to quiescence and returns the output plus
    /// metrics comparable to the GRAPE engine's.
    pub fn run<P: VertexProgram>(
        &self,
        graph: &Graph,
        program: &P,
        query: &P::Query,
    ) -> (P::Output, EngineMetrics) {
        let start = Instant::now();
        let n = graph.num_vertices();
        let mut metrics = EngineMetrics {
            program: format!("vertex-centric-{}", program.name()),
            workers: self.num_workers,
            fragments: self.num_workers,
            ..Default::default()
        };
        let mut values: Vec<P::VertexValue> = (0..n as VertexId)
            .map(|v| program.init(query, graph, v))
            .collect();
        // Inbox per vertex.
        let mut inboxes: Vec<Vec<P::Message>> = (0..n).map(|_| Vec::new()).collect();
        let mut superstep = 0usize;

        loop {
            let step_start = Instant::now();
            let active: Vec<bool> = (0..n)
                .map(|v| superstep == 0 || !inboxes[v].is_empty())
                .collect();
            let active_count = active.iter().filter(|&&a| a).count();
            if active_count == 0 || superstep >= program.max_supersteps() {
                break;
            }
            // Partition vertices by worker and run compute in parallel.
            let outboxes: MessageQueues<P::Message> = (0..self.num_workers)
                .map(|_| Mutex::new(Vec::new()))
                .collect();
            let incoming: Vec<Vec<P::Message>> =
                std::mem::replace(&mut inboxes, (0..n).map(|_| Vec::new()).collect());
            let values_slots: Vec<Mutex<Option<P::VertexValue>>> =
                values.into_iter().map(|v| Mutex::new(Some(v))).collect();
            std::thread::scope(|s| {
                for w in 0..self.num_workers {
                    let active = &active;
                    let incoming = &incoming;
                    let values_slots = &values_slots;
                    let outboxes = &outboxes;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for v in 0..n {
                            if self.worker_of(v as VertexId) != w || !active[v] {
                                continue;
                            }
                            let mut ctx = VertexContext {
                                messages: Vec::new(),
                            };
                            let mut slot = values_slots[v].lock();
                            let value = slot.as_mut().expect("value present");
                            program.compute(
                                query,
                                graph,
                                v as VertexId,
                                value,
                                superstep,
                                &incoming[v],
                                &mut ctx,
                            );
                            out.extend(ctx.messages);
                        }
                        outboxes[w].lock().extend(out);
                    });
                }
            });
            values = values_slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("value present"))
                .collect();

            // Route messages; combine per destination when a combiner exists.
            let mut routed = 0usize;
            let mut bytes = 0usize;
            for (w, outbox) in outboxes.into_iter().enumerate() {
                for (to, msg) in outbox.into_inner() {
                    if (to as usize) >= n {
                        continue;
                    }
                    let crosses_workers = self.worker_of(to) != w;
                    // Try to combine with an existing message for `to`.
                    let mut combined = false;
                    if let Some(last) = inboxes[to as usize].last_mut() {
                        if let Some(merged) = program.combine(last, &msg) {
                            *last = merged;
                            combined = true;
                        }
                    }
                    if !combined {
                        inboxes[to as usize].push(msg.clone());
                    }
                    if crosses_workers {
                        routed += 1;
                        bytes += program.message_size(&msg) + std::mem::size_of::<VertexId>();
                    }
                }
            }
            metrics.push_superstep(SuperstepMetrics {
                superstep,
                active_fragments: active_count,
                messages: routed,
                bytes,
                duration: step_start.elapsed(),
            });
            superstep += 1;
        }
        let output = program.output(query, graph, values);
        metrics.total_time = start.elapsed();
        (output, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::builder::GraphBuilder;

    /// Toy program: flood the maximum vertex id through the graph.
    struct MaxFlood;

    impl VertexProgram for MaxFlood {
        type Query = ();
        type VertexValue = VertexId;
        type Message = VertexId;
        type Output = Vec<VertexId>;

        fn name(&self) -> &str {
            "max-flood"
        }

        fn init(&self, _q: &(), _g: &Graph, v: VertexId) -> VertexId {
            v
        }

        fn compute(
            &self,
            _q: &(),
            g: &Graph,
            v: VertexId,
            value: &mut VertexId,
            superstep: usize,
            messages: &[VertexId],
            ctx: &mut VertexContext<VertexId>,
        ) {
            let best = messages.iter().copied().max().unwrap_or(*value);
            if superstep == 0 || best > *value {
                *value = (*value).max(best);
                for n in g.out_neighbors(v) {
                    ctx.send(n.target, *value);
                }
            }
        }

        fn combine(&self, a: &VertexId, b: &VertexId) -> Option<VertexId> {
            Some(*a.max(b))
        }

        fn output(&self, _q: &(), _g: &Graph, values: Vec<VertexId>) -> Vec<VertexId> {
            values
        }
    }

    #[test]
    fn max_flood_reaches_fixpoint_on_a_cycle() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0)
            .build();
        let engine = VertexCentricEngine::new(2);
        let (values, metrics) = engine.run(&g, &MaxFlood, &());
        assert!(values.iter().all(|&v| v == 3));
        assert!(metrics.supersteps >= 4, "needs about diameter supersteps");
        assert!(metrics.total_messages > 0);
    }

    #[test]
    fn workers_do_not_change_the_answer() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .build();
        let (a, _) = VertexCentricEngine::new(1).run(&g, &MaxFlood, &());
        let (b, _) = VertexCentricEngine::new(4).run(&g, &MaxFlood, &());
        assert_eq!(a, b);
    }
}
