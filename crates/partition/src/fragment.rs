//! Fragments `F_i` and the fragmentation `F = (F_1, …, F_m)`.
//!
//! A [`Fragment`] is the unit of work of a GRAPE (virtual) worker: a local
//! subgraph over *local* dense vertex ids together with the mapping to global
//! ids, the inner/outer split, and the border sets `F_i.I` / `F_i.O`.
//! A [`Fragmentation`] bundles all fragments with the fragmentation graph
//! `G_P` and keeps a handle to the source graph so that PIE programs that
//! need `d`-hop neighborhood expansion (SubIso, Section 5.1) can be served.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use grape_graph::csr::Neighbor;
use grape_graph::graph::{Directedness, Graph};
use grape_graph::types::{Edge, Label, VertexId};

use crate::delta::QuotientTables;
use crate::fragmentation_graph::FragmentationGraph;

/// Local (fragment-internal) vertex index.
pub type LocalId = u32;

/// A fragment `F_i`: a local subgraph plus border bookkeeping.
#[derive(Debug, Clone)]
pub struct Fragment {
    id: usize,
    /// Local adjacency: dense local ids `0..num_local`, directed edges.
    local: Graph,
    /// Local id → global id.
    globals: Vec<VertexId>,
    /// Global id → local id.
    to_local: HashMap<VertexId, LocalId>,
    /// Local ids `0..num_inner` are inner vertices; the rest are outer copies.
    num_inner: usize,
    /// `F_i.I`: inner vertices (local ids) with an incoming cross edge.
    in_border: Vec<LocalId>,
    /// `F_i.O`: outer copies (local ids).
    out_border: Vec<LocalId>,
}

impl Fragment {
    /// Fragment identifier `i`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of local vertices (inner + outer copies).
    pub fn num_local(&self) -> usize {
        self.globals.len()
    }

    /// Number of inner vertices `|V_i|`.
    pub fn num_inner(&self) -> usize {
        self.num_inner
    }

    /// Number of local (directed) edges.
    pub fn num_local_edges(&self) -> usize {
        self.local.num_edges()
    }

    /// The local graph over local ids.  Outer copies have no outgoing edges.
    pub fn local_graph(&self) -> &Graph {
        &self.local
    }

    /// Local ids of all inner vertices.
    pub fn inner_locals(&self) -> impl Iterator<Item = LocalId> {
        0..self.num_inner as LocalId
    }

    /// Local ids of all vertices (inner then outer copies).
    pub fn all_locals(&self) -> impl Iterator<Item = LocalId> {
        0..self.globals.len() as LocalId
    }

    /// Local ids of the outer copies (`F_i.O`).
    pub fn out_border_locals(&self) -> &[LocalId] {
        &self.out_border
    }

    /// Local ids of the inner border (`F_i.I`).
    pub fn in_border_locals(&self) -> &[LocalId] {
        &self.in_border
    }

    /// Global ids of `F_i.O`.
    pub fn out_border_globals(&self) -> Vec<VertexId> {
        self.out_border
            .iter()
            .map(|&l| self.globals[l as usize])
            .collect()
    }

    /// Global ids of `F_i.I`.
    pub fn in_border_globals(&self) -> Vec<VertexId> {
        self.in_border
            .iter()
            .map(|&l| self.globals[l as usize])
            .collect()
    }

    /// Whether the local id denotes an inner vertex.
    #[inline]
    pub fn is_inner(&self, local: LocalId) -> bool {
        (local as usize) < self.num_inner
    }

    /// Global id of a local vertex.
    #[inline]
    pub fn global_of(&self, local: LocalId) -> VertexId {
        self.globals[local as usize]
    }

    /// Local id of a global vertex, if present in this fragment.
    #[inline]
    pub fn local_of(&self, global: VertexId) -> Option<LocalId> {
        self.to_local.get(&global).copied()
    }

    /// Label of a local vertex.
    #[inline]
    pub fn label(&self, local: LocalId) -> Label {
        self.local.vertex_label(local as VertexId)
    }

    /// Outgoing local edges of a local vertex (targets are local ids).
    #[inline]
    pub fn out_edges(&self, local: LocalId) -> &[Neighbor] {
        self.local.out_neighbors(local as VertexId)
    }

    /// Incoming local edges of a local vertex (sources are local ids).
    #[inline]
    pub fn in_edges(&self, local: LocalId) -> &[Neighbor] {
        self.local.in_neighbors(local as VertexId)
    }

    /// Consistency checks used by tests: mapping is a bijection, inner/outer
    /// split matches the border sets, all border ids are in range.
    pub fn check_invariants(&self) -> bool {
        let bijective = self.globals.len() == self.to_local.len()
            && self
                .globals
                .iter()
                .enumerate()
                .all(|(l, g)| self.to_local.get(g) == Some(&(l as LocalId)));
        let borders_in_range = self.out_border.iter().all(|&l| !self.is_inner(l))
            && self.in_border.iter().all(|&l| self.is_inner(l));
        bijective && borders_in_range && self.local.check_invariants()
    }

    /// Reassembles a fragment from its persisted parts (the inverse of the
    /// field accessors the snapshot codec reads).  The global → local map is
    /// derived from `globals`; the caller is expected to validate the result
    /// with [`Fragment::check_invariants`].
    pub(crate) fn from_raw_parts(
        id: usize,
        local: Graph,
        globals: Vec<VertexId>,
        num_inner: usize,
        in_border: Vec<LocalId>,
        out_border: Vec<LocalId>,
    ) -> Fragment {
        let to_local: HashMap<VertexId, LocalId> = globals
            .iter()
            .enumerate()
            .map(|(l, &v)| (v, l as LocalId))
            .collect();
        Fragment {
            id,
            local,
            globals,
            to_local,
            num_inner,
            in_border,
            out_border,
        }
    }

    /// Whether two fragments are structurally identical: same vertex mapping,
    /// inner/outer split, border sets and local adjacency.  Both sides must
    /// come from the deterministic edge-cut construction (which they do —
    /// this is how delta application decides that a candidate fragment was
    /// not actually affected by `ΔG`).
    pub(crate) fn same_structure(&self, other: &Fragment) -> bool {
        self.id == other.id
            && self.num_inner == other.num_inner
            && self.globals == other.globals
            && self.in_border == other.in_border
            && self.out_border == other.out_border
            && self.local.edges() == other.local.edges()
    }
}

/// A complete fragmentation: all fragments, the fragmentation graph `G_P`,
/// and a shared handle on the source graph.
///
/// Fragments are **refcounted** (`Arc<Fragment>`): cloning a fragmentation —
/// which is how every `PreparedQuery` handle gets its own copy — shares the
/// fragment storage instead of duplicating it, so a server can keep
/// thousands of prepared queries over one evolving graph cheaply.  Delta
/// application replaces only the rebuilt fragments' `Arc`s; untouched
/// fragments stay shared across all handles.
#[derive(Debug, Clone)]
pub struct Fragmentation {
    fragments: Vec<Arc<Fragment>>,
    gp: FragmentationGraph,
    source: Arc<Graph>,
    strategy_name: String,
    /// Lazily derived quotient routing tables (see
    /// [`crate::delta::QuotientTables`]): one derivation per fragmentation
    /// *version*, shared across clones — cloning keeps the `Arc` so every
    /// prepared-query handle over this version reads the same cell.
    quotient: Arc<OnceLock<Arc<QuotientTables>>>,
}

impl Fragmentation {
    /// Number of fragments `m`.
    pub fn num_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// The fragments (shared handles).
    pub fn fragments(&self) -> &[Arc<Fragment>] {
        &self.fragments
    }

    /// Fragment `i`.
    pub fn fragment(&self, i: usize) -> &Fragment {
        &self.fragments[i]
    }

    /// Whether two fragmentations share the storage of fragment `i` (used by
    /// tests to pin the refcounting behaviour).
    pub fn shares_fragment_storage(&self, other: &Fragmentation, i: usize) -> bool {
        Arc::ptr_eq(&self.fragments[i], &other.fragments[i])
    }

    /// The fragmentation graph `G_P`.
    pub fn gp(&self) -> &FragmentationGraph {
        &self.gp
    }

    /// The partitioned source graph.
    pub fn source(&self) -> &Arc<Graph> {
        &self.source
    }

    /// Name of the strategy that produced this fragmentation.
    pub fn strategy_name(&self) -> &str {
        &self.strategy_name
    }

    /// The quotient-table cache cell of this version (see
    /// [`Fragmentation::quotient_tables`] in `crate::delta`).
    pub(crate) fn quotient_cell(&self) -> &OnceLock<Arc<QuotientTables>> {
        &self.quotient
    }

    /// Total number of border vertices `|F.O| = |F.I|`-ish (distinct).
    pub fn num_border_vertices(&self) -> usize {
        self.gp.border_vertices().count()
    }

    /// Builds an *expanded* copy of fragment `i` that additionally contains
    /// every vertex and edge within `hops` hops (following either direction)
    /// of the fragment's inner border `F_i.I`, as required by the SubIso PIE
    /// program (candidate set `C_i` with `d = d_Q`, Section 5.1).
    ///
    /// Returns the expanded fragment together with the number of vertices and
    /// edges that had to be *shipped* from other fragments (used by the
    /// engine to account for communication).
    pub fn expand_fragment(&self, i: usize, hops: usize) -> (Fragment, usize, usize) {
        let base = &self.fragments[i];
        let g = self.source.as_ref();
        // Start from all vertices already present locally.
        let mut keep: HashMap<VertexId, bool> = HashMap::new(); // vertex -> is_inner
        for l in base.all_locals() {
            keep.insert(base.global_of(l), base.is_inner(l));
        }
        // BFS outward from the inner border, up to `hops` hops, both directions.
        let mut frontier: Vec<VertexId> = base.in_border_globals();
        // Also expand around outer copies so the matched neighborhoods are complete.
        frontier.extend(base.out_border_globals());
        for _ in 0..hops {
            let mut next = Vec::new();
            for &v in &frontier {
                for n in g.out_neighbors(v).iter().chain(g.in_neighbors(v).iter()) {
                    if let std::collections::hash_map::Entry::Vacant(e) = keep.entry(n.target) {
                        e.insert(false);
                        next.push(n.target);
                    }
                }
            }
            frontier = next;
        }
        // Assemble the vertex list: inner vertices first (same order as base).
        let mut globals: Vec<VertexId> = base.inner_locals().map(|l| base.global_of(l)).collect();
        let mut extra: Vec<VertexId> = keep
            .iter()
            .filter(|(v, is_inner)| !**is_inner && !globals.contains(*v))
            .map(|(v, _)| *v)
            .collect();
        extra.sort_unstable();
        let shipped_vertices = keep.len() - base.num_local();
        globals.extend(extra);

        let to_local: HashMap<VertexId, LocalId> = globals
            .iter()
            .enumerate()
            .map(|(l, &v)| (v, l as LocalId))
            .collect();

        // Local edges: every source-graph edge with both endpoints kept.
        let mut edges = Vec::new();
        let mut shipped_edges = 0usize;
        for (&v, _) in keep.iter() {
            let src_local = to_local[&v];
            let src_is_inner = base.local_of(v).map(|l| base.is_inner(l)).unwrap_or(false);
            for n in g.out_neighbors(v) {
                if let Some(&dst_local) = to_local.get(&n.target) {
                    edges.push(Edge::new(
                        src_local as VertexId,
                        dst_local as VertexId,
                        n.weight,
                        n.label,
                    ));
                    if !src_is_inner {
                        shipped_edges += 1;
                    }
                }
            }
        }
        let labels: Vec<Label> = globals.iter().map(|&v| g.vertex_label(v)).collect();
        let local = Graph::from_parts(Directedness::Directed, globals.len(), edges, labels);

        let num_inner = base.num_inner();
        let expanded = Fragment {
            id: i,
            local,
            globals,
            to_local,
            num_inner,
            in_border: base.in_border.clone(),
            out_border: base.out_border.clone(),
        };
        (expanded, shipped_vertices, shipped_edges)
    }
}

/// Builds fragment `i` of an edge-cut fragmentation: the given inner
/// vertices (in global order) plus outer copies discovered from their
/// out-edges, the local adjacency, and both border sets.  Shared by the
/// full [`build_edge_cut`] construction and by the incremental rebuild in
/// [`crate::delta`], so delta application and fresh partitioning produce
/// byte-identical fragments.
pub(crate) fn build_edge_cut_fragment(
    g: &Graph,
    assignment: &[u32],
    i: usize,
    inner_vs: &[VertexId],
) -> Fragment {
    let mut globals: Vec<VertexId> = inner_vs.to_vec();
    let mut to_local: HashMap<VertexId, LocalId> = globals
        .iter()
        .enumerate()
        .map(|(l, &v)| (v, l as LocalId))
        .collect();
    let num_inner = globals.len();

    // Discover outer copies: targets of edges leaving inner vertices that
    // are owned elsewhere.
    for &v in inner_vs {
        for n in g.out_neighbors(v) {
            if assignment[n.target as usize] as usize != i && !to_local.contains_key(&n.target) {
                to_local.insert(n.target, globals.len() as LocalId);
                globals.push(n.target);
            }
        }
    }

    // Local edges: all out-edges of inner vertices.
    let mut edges = Vec::new();
    for &v in inner_vs {
        let src_local = to_local[&v];
        for n in g.out_neighbors(v) {
            let dst_local = to_local[&n.target];
            edges.push(Edge::new(
                src_local as VertexId,
                dst_local as VertexId,
                n.weight,
                n.label,
            ));
        }
    }
    let labels: Vec<Label> = globals.iter().map(|&v| g.vertex_label(v)).collect();
    let local = Graph::from_parts(Directedness::Directed, globals.len(), edges, labels);

    // F_i.I: inner vertices with an incoming edge from another fragment.
    let mut in_border: Vec<LocalId> = Vec::new();
    for (l, &v) in globals.iter().enumerate().take(num_inner) {
        let has_cross_in = g
            .in_neighbors(v)
            .iter()
            .any(|n| assignment[n.target as usize] as usize != i);
        if has_cross_in {
            in_border.push(l as LocalId);
        }
    }
    let out_border: Vec<LocalId> = (num_inner as LocalId..globals.len() as LocalId).collect();

    Fragment {
        id: i,
        local,
        globals,
        to_local,
        num_inner,
        in_border,
        out_border,
    }
}

/// Assembles a [`Fragmentation`] from already-built fragments, recomputing
/// the fragmentation graph `G_P` from their border sets.  Used by
/// [`build_edge_cut`] and by delta application.
pub(crate) fn assemble_edge_cut(
    fragments: Vec<Arc<Fragment>>,
    assignment: Vec<u32>,
    source: Arc<Graph>,
    strategy_name: String,
) -> Fragmentation {
    let outer_sets: Vec<Vec<VertexId>> = fragments.iter().map(|f| f.out_border_globals()).collect();
    let in_border_sets: Vec<Vec<VertexId>> =
        fragments.iter().map(|f| f.in_border_globals()).collect();
    let gp = FragmentationGraph::new(assignment, &outer_sets, &in_border_sets);
    Fragmentation {
        fragments,
        gp,
        source,
        strategy_name,
        quotient: Arc::new(OnceLock::new()),
    }
}

/// Assembles a [`Fragmentation`] around an already-materialised `G_P` — the
/// spill store's rehydration path, where `G_P` was *persisted* alongside the
/// fragments and must not be re-derived from the border sets.  The caller
/// guarantees that `gp` is the fragmentation graph of exactly these
/// fragments over `source` (the store validates counts and the tests pin
/// full equality against a fresh derivation).
pub(crate) fn from_persisted_parts(
    fragments: Vec<Arc<Fragment>>,
    gp: FragmentationGraph,
    source: Arc<Graph>,
    strategy_name: String,
) -> Fragmentation {
    Fragmentation {
        fragments,
        gp,
        source,
        strategy_name,
        quotient: Arc::new(OnceLock::new()),
    }
}

/// Builds an edge-cut fragmentation from a vertex → fragment assignment.
///
/// Fragment `i` receives every vertex assigned to it plus, for every edge
/// leaving one of its vertices, the (outer copy of the) target vertex.
pub fn build_edge_cut(
    graph: &Arc<Graph>,
    assignment: &[u32],
    num_fragments: usize,
    strategy_name: &str,
) -> Fragmentation {
    assert_eq!(
        assignment.len(),
        graph.num_vertices(),
        "assignment covers every vertex"
    );
    assert!(num_fragments > 0, "need at least one fragment");
    let g = graph.as_ref();

    // Group inner vertices per fragment, preserving global order.
    let mut inner: Vec<Vec<VertexId>> = vec![Vec::new(); num_fragments];
    for v in g.vertices() {
        let f = assignment[v as usize] as usize;
        assert!(f < num_fragments, "assignment out of range");
        inner[f].push(v);
    }

    let fragments: Vec<Arc<Fragment>> = inner
        .iter()
        .enumerate()
        .map(|(i, inner_vs)| Arc::new(build_edge_cut_fragment(g, assignment, i, inner_vs)))
        .collect();
    assemble_edge_cut(
        fragments,
        assignment.to_vec(),
        Arc::clone(graph),
        strategy_name.to_string(),
    )
}

/// Builds a vertex-cut fragmentation from an edge → fragment assignment.
///
/// Every fragment receives the edges assigned to it plus copies of their
/// endpoints.  The *master* (owner) of a vertex is the fragment holding most
/// of its edges; replicated vertices form both border sets (`F.O = F.I`
/// corresponds to entry/exit vertices, Section 2).
pub fn build_vertex_cut(
    graph: &Arc<Graph>,
    edge_assignment: &[u32],
    num_fragments: usize,
    strategy_name: &str,
) -> Fragmentation {
    let g = graph.as_ref();
    assert_eq!(
        edge_assignment.len(),
        g.num_edges(),
        "assignment covers every edge"
    );
    assert!(num_fragments > 0, "need at least one fragment");

    // Which fragments touch each vertex, and how often.
    let mut touch: Vec<HashMap<u32, usize>> = vec![HashMap::new(); g.num_vertices()];
    for (e, &f) in g.edges().iter().zip(edge_assignment) {
        *touch[e.src as usize].entry(f).or_insert(0) += 1;
        *touch[e.dst as usize].entry(f).or_insert(0) += 1;
    }
    // Master assignment: the fragment with most incident edges (ties: lowest id);
    // isolated vertices go to fragment (v % m) to keep them somewhere.
    let mut owner = vec![0u32; g.num_vertices()];
    for v in g.vertices() {
        let t = &touch[v as usize];
        owner[v as usize] = if t.is_empty() {
            (v % num_fragments as u64) as u32
        } else {
            let max = t.values().max().copied().unwrap_or(0);
            t.iter()
                .filter(|(_, &c)| c == max)
                .map(|(&f, _)| f)
                .min()
                .unwrap_or(0)
        };
    }

    let mut fragments = Vec::with_capacity(num_fragments);
    let mut outer_sets = Vec::with_capacity(num_fragments);
    let mut in_border_sets = Vec::with_capacity(num_fragments);

    for i in 0..num_fragments {
        // Vertices present: masters first, replicas after.
        let mut masters: Vec<VertexId> = Vec::new();
        let mut replicas: Vec<VertexId> = Vec::new();
        for v in g.vertices() {
            let present = touch[v as usize].contains_key(&(i as u32))
                || (owner[v as usize] as usize == i && touch[v as usize].is_empty());
            if present {
                if owner[v as usize] as usize == i {
                    masters.push(v);
                } else {
                    replicas.push(v);
                }
            }
        }
        let num_inner = masters.len();
        let mut globals = masters;
        globals.extend(replicas.iter().copied());
        let to_local: HashMap<VertexId, LocalId> = globals
            .iter()
            .enumerate()
            .map(|(l, &v)| (v, l as LocalId))
            .collect();

        // Local edges: the edges assigned to this fragment.
        let mut edges = Vec::new();
        for (e, &f) in g.edges().iter().zip(edge_assignment) {
            if f as usize != i {
                continue;
            }
            let s = to_local[&e.src];
            let d = to_local[&e.dst];
            edges.push(Edge::new(s as VertexId, d as VertexId, e.weight, e.label));
            if !g.is_directed() && e.src != e.dst {
                edges.push(Edge::new(d as VertexId, s as VertexId, e.weight, e.label));
            }
        }
        let labels: Vec<Label> = globals.iter().map(|&v| g.vertex_label(v)).collect();
        let local = Graph::from_parts(Directedness::Directed, globals.len(), edges, labels);

        // Border sets: every vertex replicated on 2+ fragments, present here.
        let mut in_border = Vec::new();
        let mut out_border = Vec::new();
        let mut in_border_globals = Vec::new();
        let mut out_border_globals = Vec::new();
        for (l, &v) in globals.iter().enumerate() {
            let replicated = touch[v as usize].len() > 1
                || (touch[v as usize].len() == 1 && owner[v as usize] as usize != i);
            if !replicated {
                continue;
            }
            if l < num_inner {
                in_border.push(l as LocalId);
                in_border_globals.push(v);
            } else {
                out_border.push(l as LocalId);
                out_border_globals.push(v);
            }
        }

        outer_sets.push(out_border_globals);
        in_border_sets.push(in_border_globals);
        fragments.push(Arc::new(Fragment {
            id: i,
            local,
            globals,
            to_local,
            num_inner,
            in_border,
            out_border,
        }));
    }

    let gp =
        FragmentationGraph::new(owner, &outer_sets, &in_border_sets).with_shared_vertex_routing();
    Fragmentation {
        fragments,
        gp,
        source: Arc::clone(graph),
        strategy_name: strategy_name.to_string(),
        quotient: Arc::new(OnceLock::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::builder::GraphBuilder;

    fn chain_graph() -> Arc<Graph> {
        // 0 -> 1 -> 2 -> 3 -> 4 -> 5 (weights 1)
        let mut b = GraphBuilder::directed();
        for v in 0..5u64 {
            b.push_edge(Edge::weighted(v, v + 1, 1.0));
        }
        Arc::new(b.build())
    }

    #[test]
    fn edge_cut_fragments_cover_all_vertices_and_edges() {
        let g = chain_graph();
        let assignment = vec![0, 0, 0, 1, 1, 1];
        let frag = build_edge_cut(&g, &assignment, 2, "test");
        assert_eq!(frag.num_fragments(), 2);
        let total_inner: usize = frag.fragments().iter().map(|f| f.num_inner()).sum();
        assert_eq!(total_inner, 6);
        let total_edges: usize = frag.fragments().iter().map(|f| f.num_local_edges()).sum();
        assert_eq!(total_edges, 5);
        assert!(frag.fragments().iter().all(|f| f.check_invariants()));
    }

    #[test]
    fn edge_cut_border_sets_are_correct() {
        let g = chain_graph();
        let assignment = vec![0, 0, 0, 1, 1, 1];
        let frag = build_edge_cut(&g, &assignment, 2, "test");
        let f0 = frag.fragment(0);
        let f1 = frag.fragment(1);
        // Cross edge 2 -> 3: F0.O = {3}, F1.I = {3}; F0.I = {}, F1.O = {}.
        assert_eq!(f0.out_border_globals(), vec![3]);
        assert!(f0.in_border_globals().is_empty());
        assert_eq!(f1.in_border_globals(), vec![3]);
        assert!(f1.out_border_globals().is_empty());
        // Outer copy 3 exists locally in F0 but is not inner.
        let l3 = f0.local_of(3).unwrap();
        assert!(!f0.is_inner(l3));
    }

    #[test]
    fn edge_cut_local_adjacency_matches_global() {
        let g = chain_graph();
        let assignment = vec![0, 1, 0, 1, 0, 1];
        let frag = build_edge_cut(&g, &assignment, 2, "test");
        for f in frag.fragments() {
            for l in f.inner_locals() {
                let v = f.global_of(l);
                let local_targets: Vec<VertexId> = f
                    .out_edges(l)
                    .iter()
                    .map(|n| f.global_of(n.target as LocalId))
                    .collect();
                let global_targets: Vec<VertexId> =
                    g.out_neighbors(v).iter().map(|n| n.target).collect();
                assert_eq!(local_targets, global_targets, "vertex {v}");
            }
        }
    }

    #[test]
    fn single_fragment_has_no_borders() {
        let g = chain_graph();
        let assignment = vec![0; 6];
        let frag = build_edge_cut(&g, &assignment, 1, "test");
        let f = frag.fragment(0);
        assert!(f.out_border_globals().is_empty());
        assert!(f.in_border_globals().is_empty());
        assert_eq!(f.num_inner(), 6);
        assert_eq!(frag.num_border_vertices(), 0);
    }

    #[test]
    fn vertex_cut_replicates_shared_endpoints() {
        let g = chain_graph();
        // Edges 0..5 alternate between fragments.
        let edge_assignment = vec![0, 1, 0, 1, 0];
        let frag = build_vertex_cut(&g, &edge_assignment, 2, "vc");
        // Vertex 1 touches edges (0→1) in F0 and (1→2) in F1 → replicated.
        let holders: Vec<usize> = frag
            .fragments()
            .iter()
            .filter(|f| f.local_of(1).is_some())
            .map(|f| f.id())
            .collect();
        assert_eq!(holders.len(), 2);
        assert!(frag.gp().is_border(1));
        // Every edge appears in exactly one fragment.
        let total_edges: usize = frag.fragments().iter().map(|f| f.num_local_edges()).sum();
        assert_eq!(total_edges, 5);
        assert!(frag.fragments().iter().all(|f| f.check_invariants()));
    }

    #[test]
    fn expand_fragment_pulls_in_neighborhood() {
        let g = chain_graph();
        let assignment = vec![0, 0, 1, 1, 2, 2];
        let frag = build_edge_cut(&g, &assignment, 3, "test");
        // Fragment 1 owns {2, 3}; expanding by 2 hops should pull in 0,1,4,5.
        let (expanded, shipped_v, shipped_e) = frag.expand_fragment(1, 2);
        assert_eq!(expanded.num_inner(), 2);
        assert!(
            expanded.num_local() >= 5,
            "expanded to {} vertices",
            expanded.num_local()
        );
        assert!(shipped_v >= 2);
        assert!(shipped_e >= 1);
        assert!(expanded.check_invariants());
        // Inner vertices keep their identity.
        assert_eq!(expanded.global_of(0), 2);
        assert_eq!(expanded.global_of(1), 3);
    }

    #[test]
    fn expand_zero_hops_is_identity_sized() {
        let g = chain_graph();
        let assignment = vec![0, 0, 0, 1, 1, 1];
        let frag = build_edge_cut(&g, &assignment, 2, "test");
        let (expanded, shipped_v, _) = frag.expand_fragment(0, 0);
        assert_eq!(expanded.num_local(), frag.fragment(0).num_local());
        assert_eq!(shipped_v, 0);
    }

    #[test]
    fn cloned_fragmentations_share_fragment_storage() {
        // The refcounting contract behind prepared-query serving: a clone
        // (what every `PreparedQuery` handle holds) must not duplicate the
        // fragment storage.
        let g = chain_graph();
        let assignment = vec![0, 0, 0, 1, 1, 1];
        let frag = build_edge_cut(&g, &assignment, 2, "test");
        let clone = frag.clone();
        for i in 0..frag.num_fragments() {
            assert!(
                frag.shares_fragment_storage(&clone, i),
                "fragment {i} was deep-copied"
            );
        }
    }

    #[test]
    fn undirected_graph_edge_cut_keeps_symmetric_adjacency_for_inner_pairs() {
        let g = Arc::new(
            GraphBuilder::undirected()
                .add_edge(0, 1)
                .add_edge(1, 2)
                .add_edge(2, 3)
                .build(),
        );
        let assignment = vec![0, 0, 1, 1];
        let frag = build_edge_cut(&g, &assignment, 2, "test");
        let f0 = frag.fragment(0);
        let l0 = f0.local_of(0).unwrap();
        let l1 = f0.local_of(1).unwrap();
        assert!(f0.out_edges(l0).iter().any(|n| n.target as LocalId == l1));
        assert!(f0.out_edges(l1).iter().any(|n| n.target as LocalId == l0));
        // Cross edge 1-2 gives F0 an outer copy of 2 and F1 an outer copy of 1.
        assert_eq!(f0.out_border_globals(), vec![2]);
        assert_eq!(frag.fragment(1).out_border_globals(), vec![1]);
    }
}
