//! Streaming (single-pass) vertex partitioning, the paper's "fast
//! streaming-style partition strategy \[43\] that assigns edges to high degree
//! nodes to reduce cross edges" (Section 6).
//!
//! Two classic heuristics are provided behind one strategy type:
//!
//! * **LDG** (Linear Deterministic Greedy, Stanton & Kliot 2012): a vertex is
//!   placed on the fragment holding most of its already-placed neighbours,
//!   damped by a linear capacity penalty `1 - |P_i| / C`.
//! * **Fennel** (Tsourakakis et al. 2014): the same greedy score with an
//!   additive cost `γ/2 · α · |P_i|^{γ-1}`; with the standard `γ = 1.5`.

use std::sync::Arc;

use grape_graph::graph::Graph;

use crate::fragment::{build_edge_cut, Fragmentation};
use crate::strategy::{validate, PartitionError, PartitionStrategy};

/// Which streaming objective to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamingHeuristic {
    /// Linear Deterministic Greedy.
    Ldg,
    /// Fennel with `γ = 1.5`.
    Fennel,
}

/// Single-pass streaming vertex partitioner.
#[derive(Debug, Clone)]
pub struct StreamingPartition {
    num_fragments: usize,
    heuristic: StreamingHeuristic,
    /// Capacity slack: each fragment may hold up to `slack × n / m` vertices.
    slack: f64,
}

impl StreamingPartition {
    /// LDG streaming partitioner.
    pub fn ldg(num_fragments: usize) -> Self {
        StreamingPartition {
            num_fragments,
            heuristic: StreamingHeuristic::Ldg,
            slack: 1.1,
        }
    }

    /// Fennel streaming partitioner.
    pub fn fennel(num_fragments: usize) -> Self {
        StreamingPartition {
            num_fragments,
            heuristic: StreamingHeuristic::Fennel,
            slack: 1.1,
        }
    }

    /// Overrides the capacity slack (≥ 1).
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack.max(1.0);
        self
    }

    /// Computes the vertex → fragment assignment in a single streaming pass
    /// over the vertices in id order.
    pub fn compute_assignment(&self, graph: &Graph) -> Vec<u32> {
        let n = graph.num_vertices();
        let m = self.num_fragments;
        let capacity = ((n as f64 / m as f64) * self.slack).ceil().max(1.0);
        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; m];
        // Fennel parameters.
        let gamma = 1.5f64;
        let num_edges = graph.num_edges().max(1) as f64;
        let alpha = num_edges * (m as f64).powf(gamma - 1.0) / (n.max(1) as f64).powf(gamma);

        for v in graph.vertices() {
            // Count already-placed neighbours per fragment (both directions).
            let mut neigh = vec![0usize; m];
            for x in graph
                .out_neighbors(v)
                .iter()
                .chain(graph.in_neighbors(v).iter())
            {
                let t = assignment[x.target as usize];
                if t != u32::MAX {
                    neigh[t as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for i in 0..m {
                if sizes[i] as f64 >= capacity {
                    continue;
                }
                let score = match self.heuristic {
                    StreamingHeuristic::Ldg => neigh[i] as f64 * (1.0 - sizes[i] as f64 / capacity),
                    StreamingHeuristic::Fennel => {
                        neigh[i] as f64 - alpha * gamma / 2.0 * (sizes[i] as f64).powf(gamma - 1.0)
                    }
                };
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            // All fragments full (can happen with slack = 1 and rounding):
            // fall back to the least loaded one.
            if best_score == f64::NEG_INFINITY {
                best = (0..m).min_by_key(|&i| sizes[i]).unwrap();
            }
            assignment[v as usize] = best as u32;
            sizes[best] += 1;
        }
        assignment
    }
}

impl PartitionStrategy for StreamingPartition {
    fn name(&self) -> &str {
        match self.heuristic {
            StreamingHeuristic::Ldg => "streaming-ldg",
            StreamingHeuristic::Fennel => "streaming-fennel",
        }
    }

    fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError> {
        validate(graph, self.num_fragments)?;
        let assignment = self.compute_assignment(graph);
        Ok(build_edge_cut(
            graph,
            &assignment,
            self.num_fragments,
            self.name(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::HashEdgeCut;
    use crate::metis_like::edge_cut_of;
    use grape_graph::generators::{power_law, road_grid};

    #[test]
    fn every_vertex_assigned_within_capacity() {
        let g = power_law(1000, 4000, 0, 1);
        for strategy in [StreamingPartition::ldg(4), StreamingPartition::fennel(4)] {
            let assignment = strategy.compute_assignment(&g);
            assert!(assignment.iter().all(|&a| a != u32::MAX && a < 4));
            let mut sizes = vec![0usize; 4];
            for &a in &assignment {
                sizes[a as usize] += 1;
            }
            let cap = (1000.0_f64 / 4.0 * 1.1).ceil() as usize;
            assert!(
                sizes.iter().all(|&s| s <= cap),
                "{}: {sizes:?}",
                strategy.name()
            );
        }
    }

    #[test]
    fn ldg_cuts_fewer_edges_than_hash_on_grid() {
        let g = road_grid(20, 20, 2);
        let ldg_cut = edge_cut_of(&g, &StreamingPartition::ldg(4).compute_assignment(&g));
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let mut hash_assignment = vec![0u32; g.num_vertices()];
        for f in frag.fragments() {
            for l in f.inner_locals() {
                hash_assignment[f.global_of(l) as usize] = f.id() as u32;
            }
        }
        let hash_cut = edge_cut_of(&g, &hash_assignment);
        assert!(ldg_cut < hash_cut, "ldg {ldg_cut} vs hash {hash_cut}");
    }

    #[test]
    fn fennel_produces_valid_fragmentation() {
        let g = power_law(600, 2400, 0, 5);
        let frag = StreamingPartition::fennel(6).partition(&g).unwrap();
        assert_eq!(frag.num_fragments(), 6);
        let total: usize = frag.fragments().iter().map(|f| f.num_inner()).sum();
        assert_eq!(total, 600);
        assert!(frag.fragments().iter().all(|f| f.check_invariants()));
    }

    #[test]
    fn slack_one_still_assigns_everything() {
        let g = power_law(100, 300, 0, 7);
        let assignment = StreamingPartition::ldg(3)
            .with_slack(1.0)
            .compute_assignment(&g);
        assert!(assignment.iter().all(|&a| a < 3));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(StreamingPartition::ldg(2).name(), "streaming-ldg");
        assert_eq!(StreamingPartition::fennel(2).name(), "streaming-fennel");
    }
}
