//! The fragmentation graph `G_P` (Section 2 of the paper).
//!
//! `G_P` is an index that, for every border vertex `v`, retrieves the set of
//! fragment pairs `(i → j)` such that `v ∈ F_i.O` and `v ∈ F_j.I`.  The GRAPE
//! engine consults it to deduce the destination of every changed update
//! parameter, so that only the fragments that can actually use a value
//! receive it.

use std::collections::HashMap;

use grape_graph::types::VertexId;
use serde::{Deserialize, Serialize};

/// Which border set a PIE program's update parameters live on
/// (Section 3.2: the candidate set `C_i` is `F_i.O`, `F_i.I`, or both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BorderScope {
    /// Update parameters attached to `F_i.O`: a changed value for an outer
    /// copy `v` is routed to the fragments where `v` is an inner border
    /// vertex (its owner).  Used by SSSP and CC.
    Out,
    /// Update parameters attached to `F_i.I`: a changed value for an inner
    /// border vertex `v` is routed to the fragments that hold `v` as an outer
    /// copy.  Used by graph simulation.
    In,
    /// Both directions (union of the two destination sets).  Used by CF,
    /// where factor vectors of shared vertices must stay consistent on every
    /// replica.
    Both,
}

/// The fragmentation graph `G_P`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FragmentationGraph {
    num_fragments: usize,
    /// Owner (the fragment whose inner set contains the vertex); for
    /// vertex-cut partitions this is the master replica.
    owner: Vec<u32>,
    /// For each border vertex, the fragments that hold it as an outer copy
    /// (`v ∈ F_i.O`), sorted.
    outer_holders: HashMap<VertexId, Vec<u32>>,
    /// For each border vertex, the fragments that hold it in `F_i.I`, sorted.
    in_holders: HashMap<VertexId, Vec<u32>>,
    /// Vertex-cut semantics: a shared (replicated) vertex's update parameters
    /// must reach *every* fragment holding a copy, whatever the scope
    /// (paper, Section 3.2(3b): "if P is vertex-cut, it identifies nodes
    /// shared by F_i and F_j").
    #[serde(default)]
    shared_vertex_routing: bool,
}

impl FragmentationGraph {
    /// Builds `G_P` from the owner map and the per-fragment border sets.
    ///
    /// * `owner[v]` — owning fragment of each vertex,
    /// * `outer[i]` — global ids in `F_i.O`,
    /// * `inner_border[i]` — global ids in `F_i.I`.
    pub fn new(owner: Vec<u32>, outer: &[Vec<VertexId>], inner_border: &[Vec<VertexId>]) -> Self {
        assert_eq!(outer.len(), inner_border.len(), "fragment count mismatch");
        let num_fragments = outer.len();
        let mut outer_holders: HashMap<VertexId, Vec<u32>> = HashMap::new();
        for (i, vs) in outer.iter().enumerate() {
            for &v in vs {
                outer_holders.entry(v).or_default().push(i as u32);
            }
        }
        let mut in_holders: HashMap<VertexId, Vec<u32>> = HashMap::new();
        for (i, vs) in inner_border.iter().enumerate() {
            for &v in vs {
                in_holders.entry(v).or_default().push(i as u32);
            }
        }
        for list in outer_holders.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        for list in in_holders.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        FragmentationGraph {
            num_fragments,
            owner,
            outer_holders,
            in_holders,
            shared_vertex_routing: false,
        }
    }

    /// Switches to vertex-cut routing semantics: every update to a shared
    /// vertex is delivered to all fragments holding a copy of it.
    pub fn with_shared_vertex_routing(mut self) -> Self {
        self.shared_vertex_routing = true;
        self
    }

    /// Whether vertex-cut (shared vertex) routing semantics are in effect.
    pub fn shared_vertex_routing(&self) -> bool {
        self.shared_vertex_routing
    }

    /// Number of fragments `m`.
    pub fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    /// Number of vertices of the partitioned graph.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The fragment owning vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Fragments holding `v` as an outer copy (`v ∈ F_i.O`), empty slice when
    /// `v` is not a border vertex.
    pub fn outer_holders(&self, v: VertexId) -> &[u32] {
        self.outer_holders.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fragments with `v ∈ F_i.I`.
    pub fn in_holders(&self, v: VertexId) -> &[u32] {
        self.in_holders.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `v` is a border vertex of the partition (in `F.O = F.I`).
    pub fn is_border(&self, v: VertexId) -> bool {
        self.outer_holders.contains_key(&v) || self.in_holders.contains_key(&v)
    }

    /// All border vertices (in arbitrary order).
    pub fn border_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        let mut seen: Vec<VertexId> = self
            .outer_holders
            .keys()
            .chain(self.in_holders.keys())
            .copied()
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
    }

    /// Applies a **border patch**: the `G_P` maintenance a delta-encoded
    /// spill increment carries instead of a full rewrite.  `owner_suffix`
    /// extends the owner map with the vertices created since the previous
    /// spill (vertex ids are dense and never reassigned under edge-cut delta
    /// application), and `changed` lists, for every fragment whose structure
    /// changed, its **new** border sets `(fragment, F_i.O globals, F_i.I
    /// globals)`.  Unlisted fragments kept their border sets byte-identical,
    /// so swapping only the listed fragments' holder entries reproduces
    /// exactly the `G_P` a fresh [`FragmentationGraph::new`] over all border
    /// sets would build.
    pub fn apply_border_patch(
        &mut self,
        owner_suffix: &[u32],
        changed: &[(usize, Vec<VertexId>, Vec<VertexId>)],
    ) {
        self.owner.extend_from_slice(owner_suffix);
        let changed_ids: Vec<u32> = changed.iter().map(|&(i, ..)| i as u32).collect();
        for map in [&mut self.outer_holders, &mut self.in_holders] {
            map.retain(|_, list| {
                list.retain(|f| !changed_ids.contains(f));
                !list.is_empty()
            });
        }
        for (i, out, inb) in changed {
            for &v in out {
                self.outer_holders.entry(v).or_default().push(*i as u32);
            }
            for &v in inb {
                self.in_holders.entry(v).or_default().push(*i as u32);
            }
        }
        for list in self.outer_holders.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        for list in self.in_holders.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
    }

    /// The destinations of an update to vertex `v` produced by fragment
    /// `from`, under the given scope (paper, Section 3.2(3b): "deduces their
    /// designations `P_j` by referencing `G_P`").
    ///
    /// The producing fragment itself is never a destination.
    pub fn route(&self, v: VertexId, from: usize, scope: BorderScope) -> Vec<usize> {
        let mut dests: Vec<usize> = Vec::new();
        let scope = if self.shared_vertex_routing {
            BorderScope::Both
        } else {
            scope
        };
        match scope {
            BorderScope::Out => {
                // Value computed for an outer copy → fragments where v is an
                // inner border vertex.
                for &j in self.in_holders(v) {
                    dests.push(j as usize);
                }
                // If v has no incoming cross edges recorded (e.g. vertex-cut
                // master without in-border entry), fall back to the owner.
                if dests.is_empty() {
                    dests.push(self.owner(v));
                }
            }
            BorderScope::In => {
                for &j in self.outer_holders(v) {
                    dests.push(j as usize);
                }
            }
            BorderScope::Both => {
                for &j in self.in_holders(v) {
                    dests.push(j as usize);
                }
                for &j in self.outer_holders(v) {
                    dests.push(j as usize);
                }
                let owner = self.owner(v);
                dests.push(owner);
            }
        }
        dests.sort_unstable();
        dests.dedup();
        dests.retain(|&d| d != from);
        dests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two fragments: F0 = {0,1}, F1 = {2,3}; cross edges 1→2 and 3→0.
    fn sample() -> FragmentationGraph {
        let owner = vec![0, 0, 1, 1];
        let outer = vec![vec![2], vec![0]]; // F0.O = {2}, F1.O = {0}
        let inner_border = vec![vec![0], vec![2]]; // F0.I = {0}, F1.I = {2}
        FragmentationGraph::new(owner, &outer, &inner_border)
    }

    #[test]
    fn owner_lookup() {
        let gp = sample();
        assert_eq!(gp.owner(1), 0);
        assert_eq!(gp.owner(2), 1);
        assert_eq!(gp.num_fragments(), 2);
    }

    #[test]
    fn border_vertices_are_union_of_both_sides() {
        let gp = sample();
        let border: Vec<VertexId> = gp.border_vertices().collect();
        assert_eq!(border, vec![0, 2]);
        assert!(gp.is_border(0));
        assert!(!gp.is_border(1));
    }

    #[test]
    fn out_scope_routes_to_owner_side() {
        let gp = sample();
        // Fragment 0 computed a value for its outer copy 2 → goes to fragment 1.
        assert_eq!(gp.route(2, 0, BorderScope::Out), vec![1]);
        // Fragment 1 computed a value for its outer copy 0 → goes to fragment 0.
        assert_eq!(gp.route(0, 1, BorderScope::Out), vec![0]);
    }

    #[test]
    fn in_scope_routes_to_outer_copy_holders() {
        let gp = sample();
        // Fragment 1 updated inner border vertex 2 → fragment 0 holds 2 as outer copy.
        assert_eq!(gp.route(2, 1, BorderScope::In), vec![0]);
    }

    #[test]
    fn both_scope_unions_and_excludes_sender() {
        let gp = sample();
        let dests = gp.route(2, 0, BorderScope::Both);
        assert_eq!(dests, vec![1]);
        let dests = gp.route(2, 1, BorderScope::Both);
        assert_eq!(dests, vec![0]);
    }

    #[test]
    fn out_scope_falls_back_to_owner_when_no_in_border_entry() {
        let owner = vec![0, 1];
        let outer = vec![vec![1], vec![]];
        let inner_border = vec![vec![], vec![]];
        let gp = FragmentationGraph::new(owner, &outer, &inner_border);
        assert_eq!(gp.route(1, 0, BorderScope::Out), vec![1]);
    }

    #[test]
    fn non_border_vertex_routes_nowhere_under_in_scope() {
        let gp = sample();
        assert!(gp.route(1, 0, BorderScope::In).is_empty());
    }

    #[test]
    fn border_patch_reproduces_a_fresh_rebuild() {
        // Start from sample(); fragment 0 changes: drops its outer copy of 2,
        // gains an outer copy of 3, and a new vertex 4 lands in fragment 0.
        let mut patched = sample();
        patched.apply_border_patch(&[0], &[(0, vec![3], vec![0])]);

        let owner = vec![0, 0, 1, 1, 0];
        let outer = vec![vec![3], vec![0]];
        let inner_border = vec![vec![0], vec![2]];
        let fresh = FragmentationGraph::new(owner, &outer, &inner_border);
        assert_eq!(patched, fresh);
        assert_eq!(patched.num_vertices(), 5);
        assert!(!patched.outer_holders(2).contains(&0));
        assert_eq!(patched.outer_holders(3), &[0]);
    }

    #[test]
    fn border_patch_with_no_changes_is_identity() {
        let mut gp = sample();
        let before = gp.clone();
        gp.apply_border_patch(&[], &[]);
        assert_eq!(gp, before);
    }
}
