//! Per-fragment binary snapshots: persisting [`Fragment`]s with the same
//! tagged little-endian value encoding as `grape_graph::io`'s graph
//! snapshots — the second half of the persistent-storage roadmap item.
//!
//! A prepared query that has been **evicted** from memory must come back
//! without re-partitioning the graph or re-running PEval.  That needs the
//! fragments themselves (local subgraph, global-id mapping, inner/outer
//! split, border sets) to round-trip through disk:
//!
//! * [`write_fragment_snapshot`] / [`read_fragment_snapshot`] persist **one**
//!   fragment as a self-delimiting record (magic header + value tree), so
//!   records can be *concatenated* into a single spill file and read back
//!   one at a time;
//! * [`write_fragments_file`] / [`read_fragments_file`] store a whole
//!   fragment set as a count-prefixed concatenation, rejecting trailing
//!   bytes after the last record;
//! * [`rehydrate_fragmentation`] reassembles a [`Fragmentation`] from
//!   reloaded fragments plus the retained source graph and vertex
//!   assignment, re-deriving the fragmentation graph `G_P` from the border
//!   sets exactly like fresh partitioning does.
//!
//! The codec is strict: every record is validated with
//! [`Fragment::check_invariants`] on read, and malformed or truncated input
//! surfaces as [`SnapshotError`] instead of a half-built fragment.
//!
//! On top of the per-fragment codec sits the **tiered spill store**
//! ([`QuerySpillStore`]): one LSM-lite store per evicted query.  The first
//! spill writes a **base snapshot** (full fragments, partials, the
//! fragmentation graph `G_P` and the derived quotient routing tables);
//! every later spill appends a **delta-encoded increment** carrying only
//! the fragments and partials whose serialized records changed since the
//! previous spill, plus the `G_P` border patch and fresh quotient tables.
//! [`QuerySpillStore::load`] folds base ⊕ increments back into one state,
//! and [`QuerySpillStore::compact`] rewrites the folded state as a new base
//! (a new *generation*), atomically.  Every file is staged with
//! `grape_graph::io::atomic_write_file` (tmp + fsync + rename), so a crash
//! mid-spill leaves the previous on-disk state fully readable and at worst
//! an orphaned `.tmp` that [`QuerySpillStore::recover`] cleans up.

use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use grape_graph::graph::Graph;
use grape_graph::io::{
    atomic_write_file, ensure_fully_consumed, read_value_tree, write_value_tree, IoError,
};
use grape_graph::types::VertexId;
use serde::{Deserialize, Serialize, Value};

use crate::delta::QuotientTables;
use crate::fragment::{assemble_edge_cut, from_persisted_parts, Fragment, Fragmentation, LocalId};
use crate::fragmentation_graph::FragmentationGraph;

/// Magic header of one fragment snapshot record: "GRPF" + format version 1.
const FRAGMENT_MAGIC: &[u8; 5] = b"GRPF\x01";

/// Errors produced by the fragment snapshot codec.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O or value-tree failure.
    Io(IoError),
    /// A record that decodes but does not describe a valid fragment.
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "fragment snapshot i/o: {e}"),
            SnapshotError::Malformed(reason) => {
                write!(f, "malformed fragment snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<IoError> for SnapshotError {
    fn from(e: IoError) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(IoError::Io(e))
    }
}

/// Converts a fragment into its persistable value tree.
///
/// Public so that transports can ship fragments to worker subprocesses
/// using the same codec that spill snapshots use.
pub fn fragment_to_value(frag: &Fragment) -> Value {
    let globals: Vec<VertexId> = frag.all_locals().map(|l| frag.global_of(l)).collect();
    Value::Map(vec![
        ("id".to_string(), (frag.id() as u64).to_value()),
        (
            "num_inner".to_string(),
            (frag.num_inner() as u64).to_value(),
        ),
        ("globals".to_string(), globals.to_value()),
        ("in_border".to_string(), frag.in_border_locals().to_value()),
        (
            "out_border".to_string(),
            frag.out_border_locals().to_value(),
        ),
        ("local".to_string(), frag.local_graph().to_value()),
    ])
}

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, SnapshotError> {
    v.get_field(name)
        .ok_or_else(|| SnapshotError::Malformed(format!("missing field `{name}`")))
}

/// Rebuilds a fragment from its value tree, validating the invariants.
pub fn fragment_from_value(v: &Value) -> Result<Fragment, SnapshotError> {
    let shape = |e: serde::Error| SnapshotError::Malformed(e.to_string());
    let id = u64::from_value(field(v, "id")?).map_err(shape)? as usize;
    let num_inner = u64::from_value(field(v, "num_inner")?).map_err(shape)? as usize;
    let globals = Vec::<VertexId>::from_value(field(v, "globals")?).map_err(shape)?;
    let in_border = Vec::<LocalId>::from_value(field(v, "in_border")?).map_err(shape)?;
    let out_border = Vec::<LocalId>::from_value(field(v, "out_border")?).map_err(shape)?;
    let local = Graph::from_value(field(v, "local")?).map_err(shape)?;
    if num_inner > globals.len() || local.num_vertices() != globals.len() {
        return Err(SnapshotError::Malformed(format!(
            "inner/local counts disagree: {num_inner} inner, {} globals, {} local vertices",
            globals.len(),
            local.num_vertices()
        )));
    }
    if in_border
        .iter()
        .chain(out_border.iter())
        .any(|&l| (l as usize) >= globals.len())
    {
        return Err(SnapshotError::Malformed(
            "border local id out of range".to_string(),
        ));
    }
    let frag = Fragment::from_raw_parts(id, local, globals, num_inner, in_border, out_border);
    if !frag.check_invariants() {
        return Err(SnapshotError::Malformed(
            "fragment invariants do not hold (duplicate globals or inconsistent borders)"
                .to_string(),
        ));
    }
    Ok(frag)
}

/// Writes **one** fragment as a self-delimiting record (magic header +
/// value tree).  Records written back to back form a valid concatenated
/// stream for [`read_fragment_snapshot`].
pub fn write_fragment_snapshot<W: Write>(
    frag: &Fragment,
    writer: &mut W,
) -> Result<(), SnapshotError> {
    writer.write_all(FRAGMENT_MAGIC)?;
    write_value_tree(writer, &fragment_to_value(frag))?;
    Ok(())
}

/// Reads exactly one fragment record, leaving the reader positioned at the
/// first byte after it (no lookahead, so concatenated records read back one
/// at a time).
pub fn read_fragment_snapshot<R: Read>(reader: &mut R) -> Result<Fragment, SnapshotError> {
    let mut magic = [0u8; 5];
    reader
        .read_exact(&mut magic)
        .map_err(|e| SnapshotError::Io(IoError::Io(e)))?;
    if &magic != FRAGMENT_MAGIC {
        return Err(SnapshotError::Malformed(
            "bad magic header (not a grape fragment snapshot, or wrong version)".to_string(),
        ));
    }
    let value = read_value_tree(reader)?;
    fragment_from_value(&value)
}

/// Writes a fragment set to a writer: a `u64` little-endian count prefix
/// followed by the concatenated per-fragment records.  Composable — e.g.
/// the prepared-query spill files embed this block followed by the
/// partials.
pub fn write_fragments<W: Write>(
    fragments: &[Arc<Fragment>],
    writer: &mut W,
) -> Result<(), SnapshotError> {
    writer.write_all(&(fragments.len() as u64).to_le_bytes())?;
    for frag in fragments {
        write_fragment_snapshot(frag, writer)?;
    }
    Ok(())
}

/// Reads a count-prefixed fragment block back, leaving the reader
/// positioned after the last declared record (no end-of-input check — the
/// caller of a composed format decides when the stream must end).
pub fn read_fragments<R: Read>(reader: &mut R) -> Result<Vec<Fragment>, SnapshotError> {
    let mut count = [0u8; 8];
    reader.read_exact(&mut count)?;
    let n = u64::from_le_bytes(count) as usize;
    let mut fragments = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        fragments.push(read_fragment_snapshot(reader)?);
    }
    Ok(fragments)
}

/// Writes a whole fragment set to `path` ([`write_fragments`] as the entire
/// file).
pub fn write_fragments_file<P: AsRef<Path>>(
    fragments: &[Arc<Fragment>],
    path: P,
) -> Result<(), SnapshotError> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_fragments(fragments, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a fragment set back from `path`, rejecting trailing bytes after
/// the last declared record (concatenation gone out of sync with the count
/// prefix must not read back silently).
pub fn read_fragments_file<P: AsRef<Path>>(path: P) -> Result<Vec<Fragment>, SnapshotError> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let fragments = read_fragments(&mut r)?;
    ensure_fully_consumed(&mut r)?;
    Ok(fragments)
}

/// Reassembles a [`Fragmentation`] from reloaded fragments: `G_P` is
/// re-derived from the fragments' border sets, exactly as fresh edge-cut
/// partitioning does.  `assignment` must map every vertex of `source` to
/// its owning fragment (the evolving-graph timeline retains it) and the
/// fragments must be the complete set, in fragment-id order.
pub fn rehydrate_fragmentation(
    fragments: Vec<Fragment>,
    assignment: Vec<u32>,
    source: Arc<Graph>,
    strategy_name: &str,
) -> Result<Fragmentation, SnapshotError> {
    if assignment.len() != source.num_vertices() {
        return Err(SnapshotError::Malformed(format!(
            "assignment covers {} vertices, source has {}",
            assignment.len(),
            source.num_vertices()
        )));
    }
    for (i, frag) in fragments.iter().enumerate() {
        if frag.id() != i {
            return Err(SnapshotError::Malformed(format!(
                "fragment {} found at position {i}: snapshots out of order",
                frag.id()
            )));
        }
    }
    Ok(assemble_edge_cut(
        fragments.into_iter().map(Arc::new).collect(),
        assignment,
        source,
        strategy_name.to_string(),
    ))
}

/// Reassembles a [`Fragmentation`] around a **persisted** `G_P` — the tiered
/// store's rehydration path, which must not re-derive anything from border
/// sets.  Counts are validated against the retained source graph; the tests
/// additionally pin the persisted `G_P` equal to a freshly derived one.
pub fn rehydrate_fragmentation_persisted(
    fragments: Vec<Fragment>,
    gp: FragmentationGraph,
    source: Arc<Graph>,
    strategy_name: &str,
) -> Result<Fragmentation, SnapshotError> {
    if gp.num_vertices() != source.num_vertices() {
        return Err(SnapshotError::Malformed(format!(
            "persisted G_P covers {} vertices, source has {}",
            gp.num_vertices(),
            source.num_vertices()
        )));
    }
    if gp.num_fragments() != fragments.len() {
        return Err(SnapshotError::Malformed(format!(
            "persisted G_P has {} fragments, snapshot has {}",
            gp.num_fragments(),
            fragments.len()
        )));
    }
    for (i, frag) in fragments.iter().enumerate() {
        if frag.id() != i {
            return Err(SnapshotError::Malformed(format!(
                "fragment {} found at position {i}: snapshots out of order",
                frag.id()
            )));
        }
    }
    Ok(from_persisted_parts(
        fragments.into_iter().map(Arc::new).collect(),
        gp,
        source,
        strategy_name.to_string(),
    ))
}

// ---------------------------------------------------------------------------
// The tiered spill store
// ---------------------------------------------------------------------------

/// Magic prefix of every query spill file; the byte after it is the format
/// version.
const SPILL_MAGIC: &[u8; 4] = b"GRQS";
/// Version 1: the legacy wholesale format (full fragments + partials, no
/// `G_P`, no increments).  Still readable as a base snapshot.
const SPILL_VERSION_V1: u8 = 1;
/// Version 2: the tiered format (base + increment records).
const SPILL_VERSION_V2: u8 = 2;
/// Record kind byte of a version-2 base snapshot.
const RECORD_BASE: u8 = b'B';
/// Record kind byte of a version-2 increment.
const RECORD_INCREMENT: u8 = b'I';

/// FNV-1a, the change detector of the increment encoder: a fragment or
/// partial whose serialized record hashes identically to the previous spill
/// is byte-identical (the codec is deterministic) and is not rewritten.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reads the 4-byte magic + 1-byte version, splitting "not a spill file"
/// from "a spill file of an unsupported version" (the latter names the
/// found and supported versions so the operator knows what to do).
fn read_spill_version<R: Read>(r: &mut R) -> Result<u8, SnapshotError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| SnapshotError::Io(IoError::Io(e)))?;
    if &magic != SPILL_MAGIC {
        return Err(SnapshotError::Malformed(
            "not a grape query spill file (bad magic header)".to_string(),
        ));
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)
        .map_err(|e| SnapshotError::Io(IoError::Io(e)))?;
    match ver[0] {
        SPILL_VERSION_V1 | SPILL_VERSION_V2 => Ok(ver[0]),
        other => Err(SnapshotError::Malformed(format!(
            "unsupported query spill format version {other}: this build reads versions \
             {SPILL_VERSION_V1} (wholesale) and {SPILL_VERSION_V2} (tiered) — \
             rewrite the spill with a matching build or clear the spill directory"
        ))),
    }
}

fn header_u64(v: &Value, name: &str) -> Result<u64, SnapshotError> {
    match field(v, name)? {
        Value::UInt(n) => Ok(*n),
        _ => Err(SnapshotError::Malformed(format!(
            "header field `{name}` is not an unsigned integer"
        ))),
    }
}

fn header_str(v: &Value, name: &str) -> Result<String, SnapshotError> {
    match field(v, name)? {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(SnapshotError::Malformed(format!(
            "header field `{name}` is not a string"
        ))),
    }
}

fn read_count<R: Read>(r: &mut R) -> Result<usize, SnapshotError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf) as usize)
}

/// Reads a `u64`-count-prefixed run of partial value trees.
fn read_partials<R: Read>(r: &mut R) -> Result<Vec<Value>, SnapshotError> {
    let n = read_count(r)?;
    let mut partials = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        partials.push(read_value_tree(r)?);
    }
    Ok(partials)
}

/// The folded on-disk state of one query: base ⊕ all increments.
#[derive(Debug)]
pub struct LoadedSpill {
    /// The complete fragment set, in fragment-id order.
    pub fragments: Vec<Fragment>,
    /// The persisted fragmentation graph; `None` for a legacy (v1) base,
    /// whose reader falls back to re-deriving it.
    pub gp: Option<FragmentationGraph>,
    /// The persisted quotient routing tables (newest record wins); `None`
    /// for a legacy base.
    pub quotient: Option<Arc<QuotientTables>>,
    /// One partial-result value tree per fragment.
    pub partials: Vec<Value>,
    /// Compaction generation of the base this state was folded from.
    pub generation: u64,
    /// Partition strategy recorded in the base (`None` for legacy bases).
    pub strategy: Option<String>,
}

/// Point-in-time counters of one query's spill store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpillStoreStats {
    /// Number of increments currently chained on the base.
    pub chain_len: usize,
    /// On-disk size of the current base snapshot.
    pub base_bytes: u64,
    /// Combined on-disk size of the chained increments.
    pub increment_bytes: u64,
    /// Bytes written by the most recent spill (base or increment).
    pub last_spill_bytes: u64,
    /// Completed compactions (chain folds) over the store's lifetime.
    pub compactions: u64,
}

/// An LSM-lite, crash-safe spill store for **one** evicted query.
///
/// File set inside the spill directory, all staged via tmp + fsync + rename:
///
/// | file                    | content                                          |
/// |-------------------------|--------------------------------------------------|
/// | `query-{id}.base`       | v2 base: header, `G_P`, quotient tables, all fragments, all partials |
/// | `query-{id}.inc-{seq}`  | v2 increment: header, owner suffix, changed fragments, fresh quotient tables, changed partials |
/// | `query-{id}.spill`      | legacy v1 wholesale snapshot, accepted as a base |
/// | `*.tmp`                 | staging leftovers of a crashed write — never read, cleaned up |
///
/// Increments carry the base's *generation*; compaction writes a new base
/// with generation + 1, so increments orphaned by a crash mid-compaction
/// are recognisably stale and ignored.
#[derive(Debug)]
pub struct QuerySpillStore {
    dir: PathBuf,
    query_id: usize,
    generation: u64,
    chain_len: usize,
    has_base: bool,
    legacy_base: bool,
    /// FNV-1a over each fragment's serialized record as of the last spill.
    frag_hashes: Vec<u64>,
    /// FNV-1a over each partial's serialized value tree as of the last spill.
    partial_hashes: Vec<u64>,
    /// `G_P` owner-map length as of the last spill (vertex ids are dense and
    /// never reassigned, so the delta is a pure suffix).
    owner_len: usize,
    base_bytes: u64,
    increment_bytes: u64,
    last_spill_bytes: u64,
    compactions: u64,
}

impl QuerySpillStore {
    fn empty(dir: &Path, query_id: usize) -> QuerySpillStore {
        QuerySpillStore {
            dir: dir.to_path_buf(),
            query_id,
            generation: 0,
            chain_len: 0,
            has_base: false,
            legacy_base: false,
            frag_hashes: Vec::new(),
            partial_hashes: Vec::new(),
            owner_len: 0,
            base_bytes: 0,
            increment_bytes: 0,
            last_spill_bytes: 0,
            compactions: 0,
        }
    }

    /// Creates a fresh store for `query_id`, removing any stale files a
    /// previous incarnation of the id left behind (including orphaned
    /// `.tmp` staging files).
    pub fn create(dir: &Path, query_id: usize) -> Result<QuerySpillStore, SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let store = Self::empty(dir, query_id);
        store.remove_query_files()?;
        Ok(store)
    }

    /// Recovers a store from whatever a previous process left on disk:
    /// reads the base (v2 or legacy v1), accepts the longest valid
    /// increment chain of the base's generation, and deletes everything
    /// else — stale-generation increments from a crashed compaction,
    /// increments past a corrupt link, and orphaned `.tmp` files.  Returns
    /// `None` when no base exists.
    pub fn recover(dir: &Path, query_id: usize) -> Result<Option<QuerySpillStore>, SnapshotError> {
        let mut store = Self::empty(dir, query_id);
        store.clean_temps();
        let legacy = if store.base_path().exists() {
            false
        } else if store.legacy_path().exists() {
            true
        } else {
            store.remove_query_files()?;
            return Ok(None);
        };
        store.has_base = true;
        store.legacy_base = legacy;
        let mut folded = read_base_file(&store.active_base_path())?;
        store.generation = folded.generation;

        let mut chain = 0usize;
        if !legacy {
            loop {
                let path = store.increment_path(chain);
                if !path.exists() {
                    break;
                }
                if apply_increment_file(&path, &mut folded, store.generation, chain as u64).is_err()
                {
                    break;
                }
                chain += 1;
            }
        }
        store.chain_len = chain;
        // Increments past the accepted chain are stale or corrupt.
        for (seq, path) in store.increment_files()? {
            if seq >= chain {
                let _ = std::fs::remove_file(path);
            }
        }
        store.install_manifest(&folded)?;
        store.base_bytes = std::fs::metadata(store.active_base_path())?.len();
        store.increment_bytes = 0;
        for seq in 0..chain {
            store.increment_bytes += std::fs::metadata(store.increment_path(seq))?.len();
        }
        Ok(Some(store))
    }

    /// The spill directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path of the current base snapshot (`.base`, or the legacy
    /// `.spill` while the store still sits on a v1 file).
    pub fn active_base_path(&self) -> PathBuf {
        if self.legacy_base {
            self.legacy_path()
        } else {
            self.base_path()
        }
    }

    /// The path of increment `seq` of the current chain.
    pub fn increment_path(&self, seq: usize) -> PathBuf {
        self.dir.join(format!("query-{}.inc-{seq}", self.query_id))
    }

    fn base_path(&self) -> PathBuf {
        self.dir.join(format!("query-{}.base", self.query_id))
    }

    fn legacy_path(&self) -> PathBuf {
        self.dir.join(format!("query-{}.spill", self.query_id))
    }

    /// Number of increments chained on the current base.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// Whether a base snapshot has been written.
    pub fn has_base(&self) -> bool {
        self.has_base
    }

    /// Point-in-time store counters.
    pub fn stats(&self) -> SpillStoreStats {
        SpillStoreStats {
            chain_len: self.chain_len,
            base_bytes: self.base_bytes,
            increment_bytes: self.increment_bytes,
            last_spill_bytes: self.last_spill_bytes,
            compactions: self.compactions,
        }
    }

    /// Spills the query's current state: the first call (or any call while
    /// the base is a legacy v1 file) writes a full base snapshot; later
    /// calls append an increment holding only what changed since the
    /// previous spill.  Returns the path of the file written.
    pub fn spill(
        &mut self,
        frag: &Fragmentation,
        partials: &[Value],
    ) -> Result<PathBuf, SnapshotError> {
        let m = frag.num_fragments();
        if partials.len() != m {
            return Err(SnapshotError::Malformed(format!(
                "{} partials for {m} fragments",
                partials.len()
            )));
        }
        let frag_records = serialize_fragment_records(frag.fragments())?;
        let partial_records = serialize_partial_records(partials)?;
        let frag_hashes: Vec<u64> = frag_records.iter().map(|b| fnv1a(b)).collect();
        let partial_hashes: Vec<u64> = partial_records.iter().map(|b| fnv1a(b)).collect();
        let owner_total = frag.gp().num_vertices();

        let path = if !self.has_base || self.legacy_base {
            self.write_base(
                &frag.gp().to_value(),
                &frag.quotient_tables().to_value(),
                frag.strategy_name(),
                &frag_records,
                &partial_records,
            )?
        } else {
            if self.frag_hashes.len() != m || self.partial_hashes.len() != partials.len() {
                return Err(SnapshotError::Malformed(format!(
                    "fragment count changed across spills ({} -> {m})",
                    self.frag_hashes.len()
                )));
            }
            let changed_frags: Vec<usize> = (0..m)
                .filter(|&i| frag_hashes[i] != self.frag_hashes[i])
                .collect();
            let changed_partials: Vec<usize> = (0..m)
                .filter(|&i| partial_hashes[i] != self.partial_hashes[i])
                .collect();
            let owner_suffix: Vec<u64> = (self.owner_len..owner_total)
                .map(|v| frag.gp().owner(v as VertexId) as u64)
                .collect();
            self.write_increment(
                &owner_suffix,
                &changed_frags,
                &frag_records,
                &frag.quotient_tables().to_value(),
                &changed_partials,
                &partial_records,
            )?
        };
        self.frag_hashes = frag_hashes;
        self.partial_hashes = partial_hashes;
        self.owner_len = owner_total;
        Ok(path)
    }

    /// Folds base ⊕ increments back into one state.
    pub fn load(&self) -> Result<LoadedSpill, SnapshotError> {
        if !self.has_base {
            return Err(SnapshotError::Malformed(
                "spill store has no base snapshot".to_string(),
            ));
        }
        let mut folded = read_base_file(&self.active_base_path())?;
        if folded.generation != self.generation {
            return Err(SnapshotError::Malformed(format!(
                "base snapshot generation {} does not match the store's {}",
                folded.generation, self.generation
            )));
        }
        for seq in 0..self.chain_len {
            apply_increment_file(
                &self.increment_path(seq),
                &mut folded,
                self.generation,
                seq as u64,
            )?;
        }
        Ok(folded)
    }

    /// Folds the increment chain into a new base snapshot of the next
    /// generation, atomically: the new base is staged and renamed first;
    /// only then are the old increments deleted.  A crash in between leaves
    /// stale-generation increments that [`QuerySpillStore::recover`]
    /// recognises and removes.  Returns `false` when there is nothing to
    /// fold.
    pub fn compact(&mut self) -> Result<bool, SnapshotError> {
        if self.chain_len == 0 {
            return Ok(false);
        }
        let folded = self.load()?;
        let gp = folded.gp.as_ref().ok_or_else(|| {
            SnapshotError::Malformed("cannot compact a legacy chain without G_P".to_string())
        })?;
        let quotient = folded.quotient.as_ref().ok_or_else(|| {
            SnapshotError::Malformed("cannot compact a chain without quotient tables".to_string())
        })?;
        let frag_arcs: Vec<Arc<Fragment>> =
            folded.fragments.iter().cloned().map(Arc::new).collect();
        let frag_records = serialize_fragment_records(&frag_arcs)?;
        let partial_records = serialize_partial_records(&folded.partials)?;
        let strategy = folded.strategy.clone().unwrap_or_default();
        self.write_base(
            &gp.to_value(),
            &quotient.to_value(),
            &strategy,
            &frag_records,
            &partial_records,
        )?;
        self.compactions += 1;
        Ok(true)
    }

    /// Deletes every file of this store.
    pub fn remove(&mut self) -> Result<(), SnapshotError> {
        self.remove_query_files()?;
        *self = Self::empty(&self.dir, self.query_id);
        Ok(())
    }

    /// Writes a base snapshot (generation + 1), then retires the previous
    /// generation's files.
    fn write_base(
        &mut self,
        gp: &Value,
        quotient: &Value,
        strategy: &str,
        frag_records: &[Vec<u8>],
        partial_records: &[Vec<u8>],
    ) -> Result<PathBuf, SnapshotError> {
        let path = self.base_path();
        let generation = self.generation + 1;
        let header = Value::Map(vec![
            ("generation".to_string(), Value::UInt(generation)),
            ("query".to_string(), Value::UInt(self.query_id as u64)),
            ("strategy".to_string(), Value::Str(strategy.to_string())),
        ]);
        atomic_write_file::<SnapshotError, _>(&path, |w| {
            w.write_all(SPILL_MAGIC)?;
            w.write_all(&[SPILL_VERSION_V2, RECORD_BASE])?;
            write_value_tree(w, &header)?;
            write_value_tree(w, gp)?;
            write_value_tree(w, quotient)?;
            w.write_all(&(frag_records.len() as u64).to_le_bytes())?;
            for record in frag_records {
                w.write_all(record)?;
            }
            w.write_all(&(partial_records.len() as u64).to_le_bytes())?;
            for record in partial_records {
                w.write_all(record)?;
            }
            Ok(())
        })?;
        for seq in 0..self.chain_len {
            let _ = std::fs::remove_file(self.increment_path(seq));
        }
        if self.legacy_base {
            let _ = std::fs::remove_file(self.legacy_path());
        }
        self.generation = generation;
        self.chain_len = 0;
        self.has_base = true;
        self.legacy_base = false;
        self.base_bytes = std::fs::metadata(&path)?.len();
        self.increment_bytes = 0;
        self.last_spill_bytes = self.base_bytes;
        Ok(path)
    }

    fn write_increment(
        &mut self,
        owner_suffix: &[u64],
        changed_frags: &[usize],
        frag_records: &[Vec<u8>],
        quotient: &Value,
        changed_partials: &[usize],
        partial_records: &[Vec<u8>],
    ) -> Result<PathBuf, SnapshotError> {
        let seq = self.chain_len;
        let path = self.increment_path(seq);
        let header = Value::Map(vec![
            ("generation".to_string(), Value::UInt(self.generation)),
            ("seq".to_string(), Value::UInt(seq as u64)),
            ("query".to_string(), Value::UInt(self.query_id as u64)),
        ]);
        let suffix = Value::Seq(owner_suffix.iter().map(|&o| Value::UInt(o)).collect());
        atomic_write_file::<SnapshotError, _>(&path, |w| {
            w.write_all(SPILL_MAGIC)?;
            w.write_all(&[SPILL_VERSION_V2, RECORD_INCREMENT])?;
            write_value_tree(w, &header)?;
            write_value_tree(w, &suffix)?;
            w.write_all(&(changed_frags.len() as u64).to_le_bytes())?;
            for &i in changed_frags {
                w.write_all(&frag_records[i])?;
            }
            write_value_tree(w, quotient)?;
            w.write_all(&(changed_partials.len() as u64).to_le_bytes())?;
            for &i in changed_partials {
                w.write_all(&(i as u64).to_le_bytes())?;
                w.write_all(&partial_records[i])?;
            }
            Ok(())
        })?;
        self.chain_len += 1;
        let bytes = std::fs::metadata(&path)?.len();
        self.increment_bytes += bytes;
        self.last_spill_bytes = bytes;
        Ok(path)
    }

    /// Rebuilds the change-detection manifest from a folded state (the
    /// recovery path — an in-process store maintains it incrementally).
    fn install_manifest(&mut self, folded: &LoadedSpill) -> Result<(), SnapshotError> {
        let mut frag_hashes = Vec::with_capacity(folded.fragments.len());
        for frag in &folded.fragments {
            let mut buf = Vec::new();
            write_fragment_snapshot(frag, &mut buf)?;
            frag_hashes.push(fnv1a(&buf));
        }
        let mut partial_hashes = Vec::with_capacity(folded.partials.len());
        for partial in &folded.partials {
            let mut buf = Vec::new();
            write_value_tree(&mut buf, partial)?;
            partial_hashes.push(fnv1a(&buf));
        }
        self.frag_hashes = frag_hashes;
        self.partial_hashes = partial_hashes;
        self.owner_len = folded.gp.as_ref().map_or(0, |gp| gp.num_vertices());
        Ok(())
    }

    /// All `query-{id}.inc-{seq}` files on disk, with their parsed seq.
    fn increment_files(&self) -> Result<Vec<(usize, PathBuf)>, SnapshotError> {
        let prefix = format!("query-{}.inc-", self.query_id);
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name.strip_prefix(&prefix) {
                if let Ok(seq) = seq.parse::<usize>() {
                    found.push((seq, entry.path()));
                }
            }
        }
        Ok(found)
    }

    /// Removes orphaned `.tmp` staging files of this query (a crashed write
    /// never reaches the final name, so temps are always garbage).
    fn clean_temps(&self) {
        let prefix = format!("query-{}.", self.query_id);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(&prefix) && name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Removes every `query-{id}.*` file (spills, increments, temps).
    fn remove_query_files(&self) -> Result<(), SnapshotError> {
        let prefix = format!("query-{}.", self.query_id);
        if !self.dir.exists() {
            return Ok(());
        }
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(&prefix) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

fn serialize_fragment_records(fragments: &[Arc<Fragment>]) -> Result<Vec<Vec<u8>>, SnapshotError> {
    fragments
        .iter()
        .map(|frag| {
            let mut buf = Vec::new();
            write_fragment_snapshot(frag, &mut buf)?;
            Ok(buf)
        })
        .collect()
}

fn serialize_partial_records(partials: &[Value]) -> Result<Vec<Vec<u8>>, SnapshotError> {
    partials
        .iter()
        .map(|partial| {
            let mut buf = Vec::new();
            write_value_tree(&mut buf, partial)?;
            Ok(buf)
        })
        .collect()
}

/// Reads one base file — v2 (`G_P` + quotient tables included) or legacy v1
/// wholesale (accepted, with `gp`/`quotient` left `None`).
fn read_base_file(path: &Path) -> Result<LoadedSpill, SnapshotError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let version = read_spill_version(&mut r)?;
    if version == SPILL_VERSION_V1 {
        let fragments = read_fragments(&mut r)?;
        let partials = read_partials(&mut r)?;
        ensure_fully_consumed(&mut r)?;
        validate_folded(&fragments, &partials)?;
        return Ok(LoadedSpill {
            fragments,
            gp: None,
            quotient: None,
            partials,
            generation: 0,
            strategy: None,
        });
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    if kind[0] != RECORD_BASE {
        return Err(SnapshotError::Malformed(format!(
            "expected a base record, found kind {:?}",
            kind[0] as char
        )));
    }
    let header = read_value_tree(&mut r)?;
    let generation = header_u64(&header, "generation")?;
    let strategy = header_str(&header, "strategy")?;
    let gp = FragmentationGraph::from_value(&read_value_tree(&mut r)?)
        .map_err(|e| SnapshotError::Malformed(format!("persisted G_P: {e}")))?;
    let quotient = QuotientTables::from_value(&read_value_tree(&mut r)?, gp.num_fragments())
        .map_err(SnapshotError::Malformed)?;
    let fragments = read_fragments(&mut r)?;
    let partials = read_partials(&mut r)?;
    ensure_fully_consumed(&mut r)?;
    validate_folded(&fragments, &partials)?;
    if gp.num_fragments() != fragments.len() {
        return Err(SnapshotError::Malformed(format!(
            "persisted G_P has {} fragments, base has {}",
            gp.num_fragments(),
            fragments.len()
        )));
    }
    Ok(LoadedSpill {
        fragments,
        gp: Some(gp),
        quotient: Some(Arc::new(quotient)),
        partials,
        generation,
        strategy: Some(strategy),
    })
}

fn validate_folded(fragments: &[Fragment], partials: &[Value]) -> Result<(), SnapshotError> {
    for (i, frag) in fragments.iter().enumerate() {
        if frag.id() != i {
            return Err(SnapshotError::Malformed(format!(
                "fragment {} found at position {i}: records out of order",
                frag.id()
            )));
        }
    }
    if partials.len() != fragments.len() {
        return Err(SnapshotError::Malformed(format!(
            "{} partials for {} fragments",
            partials.len(),
            fragments.len()
        )));
    }
    Ok(())
}

/// Reads increment `expect_seq` and folds it into `folded`.  The file is
/// parsed and validated **completely before** any mutation, so a corrupt
/// increment never leaves `folded` half-patched.
fn apply_increment_file(
    path: &Path,
    folded: &mut LoadedSpill,
    expect_generation: u64,
    expect_seq: u64,
) -> Result<(), SnapshotError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let version = read_spill_version(&mut r)?;
    if version != SPILL_VERSION_V2 {
        return Err(SnapshotError::Malformed(format!(
            "spill increment must be format version {SPILL_VERSION_V2}, found {version}"
        )));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    if kind[0] != RECORD_INCREMENT {
        return Err(SnapshotError::Malformed(format!(
            "expected an increment record, found kind {:?}",
            kind[0] as char
        )));
    }
    let header = read_value_tree(&mut r)?;
    let generation = header_u64(&header, "generation")?;
    let seq = header_u64(&header, "seq")?;
    if generation != expect_generation {
        return Err(SnapshotError::Malformed(format!(
            "increment generation {generation} does not match base generation \
             {expect_generation} (stale leftover of a compacted chain)"
        )));
    }
    if seq != expect_seq {
        return Err(SnapshotError::Malformed(format!(
            "increment declares seq {seq}, expected {expect_seq}"
        )));
    }
    let suffix_tree = read_value_tree(&mut r)?;
    let Value::Seq(suffix_items) = &suffix_tree else {
        return Err(SnapshotError::Malformed(
            "owner suffix is not a sequence".to_string(),
        ));
    };
    let mut owner_suffix = Vec::with_capacity(suffix_items.len());
    for item in suffix_items {
        match item {
            Value::UInt(o) => owner_suffix.push(*o as u32),
            _ => {
                return Err(SnapshotError::Malformed(
                    "owner suffix entry is not an unsigned integer".to_string(),
                ))
            }
        }
    }
    let changed_count = read_count(&mut r)?;
    let mut changed = Vec::with_capacity(changed_count.min(1 << 16));
    for _ in 0..changed_count {
        let frag = read_fragment_snapshot(&mut r)?;
        if frag.id() >= folded.fragments.len() {
            return Err(SnapshotError::Malformed(format!(
                "increment patches fragment {}, base has {}",
                frag.id(),
                folded.fragments.len()
            )));
        }
        changed.push(frag);
    }
    let gp = folded.gp.as_mut().ok_or_else(|| {
        SnapshotError::Malformed("increments cannot extend a legacy (v1) base".to_string())
    })?;
    let quotient = QuotientTables::from_value(&read_value_tree(&mut r)?, folded.fragments.len())
        .map_err(SnapshotError::Malformed)?;
    let patched_count = read_count(&mut r)?;
    let mut patched_partials = Vec::with_capacity(patched_count.min(1 << 16));
    for _ in 0..patched_count {
        let index = read_count(&mut r)?;
        if index >= folded.partials.len() {
            return Err(SnapshotError::Malformed(format!(
                "increment patches partial {index}, base has {}",
                folded.partials.len()
            )));
        }
        patched_partials.push((index, read_value_tree(&mut r)?));
    }
    ensure_fully_consumed(&mut r)?;

    // Everything parsed and validated — fold.
    let borders: Vec<(usize, Vec<VertexId>, Vec<VertexId>)> = changed
        .iter()
        .map(|f| (f.id(), f.out_border_globals(), f.in_border_globals()))
        .collect();
    gp.apply_border_patch(&owner_suffix, &borders);
    for frag in changed {
        let id = frag.id();
        folded.fragments[id] = frag;
    }
    folded.quotient = Some(Arc::new(quotient));
    for (index, partial) in patched_partials {
        folded.partials[index] = partial;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::RangeEdgeCut;
    use crate::strategy::PartitionStrategy;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::Edge;
    use std::io::Cursor;

    fn chain_fragmentation() -> Fragmentation {
        let mut b = GraphBuilder::directed();
        for v in 0..8u64 {
            b.push_edge(Edge::weighted(v, v + 1, 1.0 + v as f64));
        }
        RangeEdgeCut::new(3).partition(&b.build()).unwrap()
    }

    fn assert_same_fragment(a: &Fragment, b: &Fragment) {
        assert_eq!(a.id(), b.id());
        assert_eq!(a.num_inner(), b.num_inner());
        assert_eq!(a.num_local(), b.num_local());
        assert_eq!(a.in_border_locals(), b.in_border_locals());
        assert_eq!(a.out_border_locals(), b.out_border_locals());
        assert_eq!(a.local_graph().edges(), b.local_graph().edges());
        for l in a.all_locals() {
            assert_eq!(a.global_of(l), b.global_of(l));
        }
    }

    #[test]
    fn single_fragment_round_trip() {
        let frag = chain_fragmentation();
        for i in 0..frag.num_fragments() {
            let mut buf = Vec::new();
            write_fragment_snapshot(frag.fragment(i), &mut buf).unwrap();
            let back = read_fragment_snapshot(&mut Cursor::new(buf)).unwrap();
            assert_same_fragment(frag.fragment(i), &back);
            assert!(back.check_invariants());
        }
    }

    #[test]
    fn concatenated_records_read_back_in_order() {
        let frag = chain_fragmentation();
        let mut buf = Vec::new();
        for f in frag.fragments() {
            write_fragment_snapshot(f, &mut buf).unwrap();
        }
        let mut r = Cursor::new(buf);
        for i in 0..frag.num_fragments() {
            let back = read_fragment_snapshot(&mut r).unwrap();
            assert_same_fragment(frag.fragment(i), &back);
        }
        ensure_fully_consumed(&mut r).unwrap();
    }

    #[test]
    fn fragments_file_round_trip_and_rehydration() {
        let frag = chain_fragmentation();
        let path = std::env::temp_dir().join("grape_fragments_roundtrip.bin");
        write_fragments_file(frag.fragments(), &path).unwrap();
        let back = read_fragments_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.len(), frag.num_fragments());

        let assignment: Vec<u32> = (0..frag.gp().num_vertices() as VertexId)
            .map(|v| frag.gp().owner(v) as u32)
            .collect();
        let rehydrated = rehydrate_fragmentation(
            back,
            assignment,
            frag.source().clone(),
            frag.strategy_name(),
        )
        .unwrap();
        assert_eq!(rehydrated.num_fragments(), frag.num_fragments());
        for i in 0..frag.num_fragments() {
            assert_same_fragment(frag.fragment(i), rehydrated.fragment(i));
        }
        // G_P is re-derived, not persisted: routing must agree.
        for v in frag.gp().border_vertices() {
            assert_eq!(frag.gp().owner(v), rehydrated.gp().owner(v));
        }
        assert_eq!(rehydrated.num_border_vertices(), frag.num_border_vertices());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let frag = chain_fragmentation();
        let mut buf = Vec::new();
        write_fragment_snapshot(frag.fragment(0), &mut buf).unwrap();
        let mut wrong = buf.clone();
        wrong[0] = b'X';
        assert!(read_fragment_snapshot(&mut Cursor::new(wrong)).is_err());
        buf.truncate(buf.len() - 2);
        assert!(read_fragment_snapshot(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn fragments_file_rejects_trailing_garbage() {
        let frag = chain_fragmentation();
        let path = std::env::temp_dir().join("grape_fragments_trailing.bin");
        write_fragments_file(frag.fragments(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0x7f);
        std::fs::write(&path, bytes).unwrap();
        let err = read_fragments_file(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(
            err.to_string().contains("trailing"),
            "expected trailing-bytes rejection, got {err}"
        );
    }

    fn store_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grape_spill_store_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn partials_of(frag: &Fragmentation, tag: u64) -> Vec<Value> {
        (0..frag.num_fragments())
            .map(|i| Value::UInt(tag * 100 + i as u64))
            .collect()
    }

    fn assert_folded_matches(folded: &LoadedSpill, frag: &Fragmentation, partials: &[Value]) {
        assert_eq!(folded.fragments.len(), frag.num_fragments());
        for i in 0..frag.num_fragments() {
            assert_same_fragment(&folded.fragments[i], frag.fragment(i));
        }
        assert_eq!(folded.gp.as_ref().unwrap(), frag.gp());
        assert_eq!(
            folded.quotient.as_deref().unwrap(),
            &*frag.quotient_tables()
        );
        assert_eq!(folded.partials, partials);
    }

    #[test]
    fn tiered_chain_folds_back_to_the_latest_state() {
        let dir = store_dir("fold");
        let mut store = QuerySpillStore::create(&dir, 7).unwrap();
        let f0 = chain_fragmentation();
        let base = store.spill(&f0, &partials_of(&f0, 0)).unwrap();
        assert!(base.to_string_lossy().ends_with("query-7.base"), "{base:?}");
        assert_eq!(store.chain_len(), 0);

        let delta = grape_graph::delta::GraphDelta::new().add_edge(8, 9);
        let f1 = f0.apply_delta(&delta).unwrap().fragmentation;
        let inc = store.spill(&f1, &partials_of(&f1, 1)).unwrap();
        assert!(inc.to_string_lossy().ends_with("query-7.inc-0"), "{inc:?}");
        assert_eq!(store.chain_len(), 1);

        let folded = store.load().unwrap();
        assert_folded_matches(&folded, &f1, &partials_of(&f1, 1));
        assert_eq!(folded.strategy.as_deref(), Some(f0.strategy_name()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn increments_stay_small_and_compaction_folds_the_chain() {
        let dir = store_dir("compact");
        let mut store = QuerySpillStore::create(&dir, 2).unwrap();
        let frag = chain_fragmentation();
        store.spill(&frag, &partials_of(&frag, 0)).unwrap();
        let base_bytes = store.stats().base_bytes;
        for tag in 1..=2 {
            store.spill(&frag, &partials_of(&frag, tag)).unwrap();
            assert!(
                store.stats().last_spill_bytes < base_bytes / 2,
                "increment ({} bytes) should be far smaller than the base ({base_bytes} bytes)",
                store.stats().last_spill_bytes
            );
        }
        assert_eq!(store.chain_len(), 2);

        assert!(store.compact().unwrap());
        assert_eq!(store.chain_len(), 0);
        assert_eq!(store.stats().compactions, 1);
        assert_eq!(store.stats().increment_bytes, 0);
        assert!(!store.increment_path(0).exists());
        assert!(!store.increment_path(1).exists());
        let folded = store.load().unwrap();
        assert_folded_matches(&folded, &frag, &partials_of(&frag, 2));

        // Nothing left to fold.
        assert!(!store.compact().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_resumes_the_chain_and_cleans_debris() {
        let dir = store_dir("recover");
        let mut store = QuerySpillStore::create(&dir, 7).unwrap();
        let frag = chain_fragmentation();
        store.spill(&frag, &partials_of(&frag, 0)).unwrap();
        store.spill(&frag, &partials_of(&frag, 1)).unwrap();
        store.spill(&frag, &partials_of(&frag, 2)).unwrap();

        // Simulated crash debris: a staging orphan, a truncated second
        // increment, and an out-of-chain increment file.
        let orphan = dir.join("query-7.base.tmp");
        std::fs::write(&orphan, b"half-written").unwrap();
        let inc1 = store.increment_path(1);
        let bytes = std::fs::read(&inc1).unwrap();
        std::fs::write(&inc1, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::copy(store.increment_path(0), dir.join("query-7.inc-5")).unwrap();

        let recovered = QuerySpillStore::recover(&dir, 7).unwrap().unwrap();
        assert_eq!(recovered.chain_len(), 1);
        assert!(!orphan.exists());
        assert!(!inc1.exists());
        assert!(!dir.join("query-7.inc-5").exists());
        let folded = recovered.load().unwrap();
        assert_folded_matches(&folded, &frag, &partials_of(&frag, 1));

        // The recovered store keeps appending where the accepted chain ends.
        let mut recovered = recovered;
        let path = recovered.spill(&frag, &partials_of(&frag, 3)).unwrap();
        assert!(path.to_string_lossy().ends_with("query-7.inc-1"));
        let folded = recovered.load().unwrap();
        assert_folded_matches(&folded, &frag, &partials_of(&frag, 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_generation_increments_are_dropped_on_recover() {
        let dir = store_dir("stale_gen");
        let mut store = QuerySpillStore::create(&dir, 4).unwrap();
        let frag = chain_fragmentation();
        store.spill(&frag, &partials_of(&frag, 0)).unwrap();
        store.spill(&frag, &partials_of(&frag, 1)).unwrap();
        let old_inc = std::fs::read(store.increment_path(0)).unwrap();
        assert!(store.compact().unwrap());

        // A crash between the base rename and the increment deletion would
        // leave the previous generation's increments behind.
        std::fs::write(store.increment_path(0), &old_inc).unwrap();
        let recovered = QuerySpillStore::recover(&dir, 4).unwrap().unwrap();
        assert_eq!(recovered.chain_len(), 0);
        assert!(!recovered.increment_path(0).exists());
        let folded = recovered.load().unwrap();
        assert_folded_matches(&folded, &frag, &partials_of(&frag, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_v1_spill_is_accepted_and_upgraded() {
        let dir = store_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let frag = chain_fragmentation();
        let partials = partials_of(&frag, 0);

        // Hand-write the v1 wholesale format the previous release produced.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(b"GRQS\x01");
        write_fragments(frag.fragments(), &mut buf).unwrap();
        buf.extend_from_slice(&(partials.len() as u64).to_le_bytes());
        for p in &partials {
            write_value_tree(&mut buf, p).unwrap();
        }
        std::fs::write(dir.join("query-3.spill"), &buf).unwrap();

        let mut store = QuerySpillStore::recover(&dir, 3).unwrap().unwrap();
        assert_eq!(store.chain_len(), 0);
        let folded = store.load().unwrap();
        assert!(folded.gp.is_none());
        assert!(folded.quotient.is_none());
        assert_eq!(folded.partials, partials);
        assert_eq!(folded.fragments.len(), frag.num_fragments());

        // The next spill upgrades in place: a fresh v2 base replaces the
        // legacy file, and increments chain from there.
        let path = store.spill(&frag, &partials_of(&frag, 1)).unwrap();
        assert!(path.to_string_lossy().ends_with("query-3.base"));
        assert!(!dir.join("query-3.spill").exists());
        let path = store.spill(&frag, &partials_of(&frag, 2)).unwrap();
        assert!(path.to_string_lossy().ends_with("query-3.inc-0"));
        let folded = store.load().unwrap();
        assert_folded_matches(&folded, &frag, &partials_of(&frag, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_and_unsupported_version_are_distinct_errors() {
        let dir = store_dir("versions");
        std::fs::create_dir_all(&dir).unwrap();
        let not_a_spill = dir.join("junk");
        std::fs::write(&not_a_spill, b"GRXXjunk").unwrap();
        let err = read_base_file(&not_a_spill).unwrap_err();
        assert!(
            err.to_string().contains("not a grape query spill file"),
            "{err}"
        );

        let future = dir.join("future");
        std::fs::write(&future, b"GRQS\x09rest").unwrap();
        let err = read_base_file(&future).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unsupported query spill format version 9"),
            "{msg}"
        );
        assert!(
            msg.contains('2'),
            "should name the supported versions: {msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persisted_rehydration_rejects_mismatched_counts() {
        let frag = chain_fragmentation();
        let fragments: Vec<Fragment> = frag
            .fragments()
            .iter()
            .map(|f| f.as_ref().clone())
            .collect();
        let gp = frag.gp().clone();
        let ok = rehydrate_fragmentation_persisted(
            fragments.clone(),
            gp.clone(),
            frag.source().clone(),
            frag.strategy_name(),
        )
        .unwrap();
        assert_eq!(ok.gp(), frag.gp());

        let err = rehydrate_fragmentation_persisted(
            fragments[..2].to_vec(),
            gp,
            frag.source().clone(),
            frag.strategy_name(),
        )
        .unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
    }

    #[test]
    fn malformed_borders_are_rejected() {
        let frag = chain_fragmentation();
        let mut v = fragment_to_value(frag.fragment(1));
        if let Value::Map(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "out_border" {
                    *val = Value::Seq(vec![Value::UInt(10_000)]);
                }
            }
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(FRAGMENT_MAGIC);
        write_value_tree(&mut buf, &v).unwrap();
        let err = read_fragment_snapshot(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
    }
}
