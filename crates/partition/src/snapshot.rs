//! Per-fragment binary snapshots: persisting [`Fragment`]s with the same
//! tagged little-endian value encoding as `grape_graph::io`'s graph
//! snapshots — the second half of the persistent-storage roadmap item.
//!
//! A prepared query that has been **evicted** from memory must come back
//! without re-partitioning the graph or re-running PEval.  That needs the
//! fragments themselves (local subgraph, global-id mapping, inner/outer
//! split, border sets) to round-trip through disk:
//!
//! * [`write_fragment_snapshot`] / [`read_fragment_snapshot`] persist **one**
//!   fragment as a self-delimiting record (magic header + value tree), so
//!   records can be *concatenated* into a single spill file and read back
//!   one at a time;
//! * [`write_fragments_file`] / [`read_fragments_file`] store a whole
//!   fragment set as a count-prefixed concatenation, rejecting trailing
//!   bytes after the last record;
//! * [`rehydrate_fragmentation`] reassembles a [`Fragmentation`] from
//!   reloaded fragments plus the retained source graph and vertex
//!   assignment, re-deriving the fragmentation graph `G_P` from the border
//!   sets exactly like fresh partitioning does.
//!
//! The codec is strict: every record is validated with
//! [`Fragment::check_invariants`] on read, and malformed or truncated input
//! surfaces as [`SnapshotError`] instead of a half-built fragment.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use grape_graph::graph::Graph;
use grape_graph::io::{ensure_fully_consumed, read_value_tree, write_value_tree, IoError};
use grape_graph::types::VertexId;
use serde::{Deserialize, Serialize, Value};

use crate::fragment::{assemble_edge_cut, Fragment, Fragmentation, LocalId};

/// Magic header of one fragment snapshot record: "GRPF" + format version 1.
const FRAGMENT_MAGIC: &[u8; 5] = b"GRPF\x01";

/// Errors produced by the fragment snapshot codec.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O or value-tree failure.
    Io(IoError),
    /// A record that decodes but does not describe a valid fragment.
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "fragment snapshot i/o: {e}"),
            SnapshotError::Malformed(reason) => {
                write!(f, "malformed fragment snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<IoError> for SnapshotError {
    fn from(e: IoError) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(IoError::Io(e))
    }
}

/// Converts a fragment into its persistable value tree.
fn fragment_to_value(frag: &Fragment) -> Value {
    let globals: Vec<VertexId> = frag.all_locals().map(|l| frag.global_of(l)).collect();
    Value::Map(vec![
        ("id".to_string(), (frag.id() as u64).to_value()),
        (
            "num_inner".to_string(),
            (frag.num_inner() as u64).to_value(),
        ),
        ("globals".to_string(), globals.to_value()),
        ("in_border".to_string(), frag.in_border_locals().to_value()),
        (
            "out_border".to_string(),
            frag.out_border_locals().to_value(),
        ),
        ("local".to_string(), frag.local_graph().to_value()),
    ])
}

fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, SnapshotError> {
    v.get_field(name)
        .ok_or_else(|| SnapshotError::Malformed(format!("missing field `{name}`")))
}

/// Rebuilds a fragment from its value tree, validating the invariants.
fn fragment_from_value(v: &Value) -> Result<Fragment, SnapshotError> {
    let shape = |e: serde::Error| SnapshotError::Malformed(e.to_string());
    let id = u64::from_value(field(v, "id")?).map_err(shape)? as usize;
    let num_inner = u64::from_value(field(v, "num_inner")?).map_err(shape)? as usize;
    let globals = Vec::<VertexId>::from_value(field(v, "globals")?).map_err(shape)?;
    let in_border = Vec::<LocalId>::from_value(field(v, "in_border")?).map_err(shape)?;
    let out_border = Vec::<LocalId>::from_value(field(v, "out_border")?).map_err(shape)?;
    let local = Graph::from_value(field(v, "local")?).map_err(shape)?;
    if num_inner > globals.len() || local.num_vertices() != globals.len() {
        return Err(SnapshotError::Malformed(format!(
            "inner/local counts disagree: {num_inner} inner, {} globals, {} local vertices",
            globals.len(),
            local.num_vertices()
        )));
    }
    if in_border
        .iter()
        .chain(out_border.iter())
        .any(|&l| (l as usize) >= globals.len())
    {
        return Err(SnapshotError::Malformed(
            "border local id out of range".to_string(),
        ));
    }
    let frag = Fragment::from_raw_parts(id, local, globals, num_inner, in_border, out_border);
    if !frag.check_invariants() {
        return Err(SnapshotError::Malformed(
            "fragment invariants do not hold (duplicate globals or inconsistent borders)"
                .to_string(),
        ));
    }
    Ok(frag)
}

/// Writes **one** fragment as a self-delimiting record (magic header +
/// value tree).  Records written back to back form a valid concatenated
/// stream for [`read_fragment_snapshot`].
pub fn write_fragment_snapshot<W: Write>(
    frag: &Fragment,
    writer: &mut W,
) -> Result<(), SnapshotError> {
    writer.write_all(FRAGMENT_MAGIC)?;
    write_value_tree(writer, &fragment_to_value(frag))?;
    Ok(())
}

/// Reads exactly one fragment record, leaving the reader positioned at the
/// first byte after it (no lookahead, so concatenated records read back one
/// at a time).
pub fn read_fragment_snapshot<R: Read>(reader: &mut R) -> Result<Fragment, SnapshotError> {
    let mut magic = [0u8; 5];
    reader
        .read_exact(&mut magic)
        .map_err(|e| SnapshotError::Io(IoError::Io(e)))?;
    if &magic != FRAGMENT_MAGIC {
        return Err(SnapshotError::Malformed(
            "bad magic header (not a grape fragment snapshot, or wrong version)".to_string(),
        ));
    }
    let value = read_value_tree(reader)?;
    fragment_from_value(&value)
}

/// Writes a fragment set to a writer: a `u64` little-endian count prefix
/// followed by the concatenated per-fragment records.  Composable — e.g.
/// the prepared-query spill files embed this block followed by the
/// partials.
pub fn write_fragments<W: Write>(
    fragments: &[Arc<Fragment>],
    writer: &mut W,
) -> Result<(), SnapshotError> {
    writer.write_all(&(fragments.len() as u64).to_le_bytes())?;
    for frag in fragments {
        write_fragment_snapshot(frag, writer)?;
    }
    Ok(())
}

/// Reads a count-prefixed fragment block back, leaving the reader
/// positioned after the last declared record (no end-of-input check — the
/// caller of a composed format decides when the stream must end).
pub fn read_fragments<R: Read>(reader: &mut R) -> Result<Vec<Fragment>, SnapshotError> {
    let mut count = [0u8; 8];
    reader.read_exact(&mut count)?;
    let n = u64::from_le_bytes(count) as usize;
    let mut fragments = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        fragments.push(read_fragment_snapshot(reader)?);
    }
    Ok(fragments)
}

/// Writes a whole fragment set to `path` ([`write_fragments`] as the entire
/// file).
pub fn write_fragments_file<P: AsRef<Path>>(
    fragments: &[Arc<Fragment>],
    path: P,
) -> Result<(), SnapshotError> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_fragments(fragments, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a fragment set back from `path`, rejecting trailing bytes after
/// the last declared record (concatenation gone out of sync with the count
/// prefix must not read back silently).
pub fn read_fragments_file<P: AsRef<Path>>(path: P) -> Result<Vec<Fragment>, SnapshotError> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let fragments = read_fragments(&mut r)?;
    ensure_fully_consumed(&mut r)?;
    Ok(fragments)
}

/// Reassembles a [`Fragmentation`] from reloaded fragments: `G_P` is
/// re-derived from the fragments' border sets, exactly as fresh edge-cut
/// partitioning does.  `assignment` must map every vertex of `source` to
/// its owning fragment (the evolving-graph timeline retains it) and the
/// fragments must be the complete set, in fragment-id order.
pub fn rehydrate_fragmentation(
    fragments: Vec<Fragment>,
    assignment: Vec<u32>,
    source: Arc<Graph>,
    strategy_name: &str,
) -> Result<Fragmentation, SnapshotError> {
    if assignment.len() != source.num_vertices() {
        return Err(SnapshotError::Malformed(format!(
            "assignment covers {} vertices, source has {}",
            assignment.len(),
            source.num_vertices()
        )));
    }
    for (i, frag) in fragments.iter().enumerate() {
        if frag.id() != i {
            return Err(SnapshotError::Malformed(format!(
                "fragment {} found at position {i}: snapshots out of order",
                frag.id()
            )));
        }
    }
    Ok(assemble_edge_cut(
        fragments.into_iter().map(Arc::new).collect(),
        assignment,
        source,
        strategy_name.to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::RangeEdgeCut;
    use crate::strategy::PartitionStrategy;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::types::Edge;
    use std::io::Cursor;

    fn chain_fragmentation() -> Fragmentation {
        let mut b = GraphBuilder::directed();
        for v in 0..8u64 {
            b.push_edge(Edge::weighted(v, v + 1, 1.0 + v as f64));
        }
        RangeEdgeCut::new(3).partition(&b.build()).unwrap()
    }

    fn assert_same_fragment(a: &Fragment, b: &Fragment) {
        assert_eq!(a.id(), b.id());
        assert_eq!(a.num_inner(), b.num_inner());
        assert_eq!(a.num_local(), b.num_local());
        assert_eq!(a.in_border_locals(), b.in_border_locals());
        assert_eq!(a.out_border_locals(), b.out_border_locals());
        assert_eq!(a.local_graph().edges(), b.local_graph().edges());
        for l in a.all_locals() {
            assert_eq!(a.global_of(l), b.global_of(l));
        }
    }

    #[test]
    fn single_fragment_round_trip() {
        let frag = chain_fragmentation();
        for i in 0..frag.num_fragments() {
            let mut buf = Vec::new();
            write_fragment_snapshot(frag.fragment(i), &mut buf).unwrap();
            let back = read_fragment_snapshot(&mut Cursor::new(buf)).unwrap();
            assert_same_fragment(frag.fragment(i), &back);
            assert!(back.check_invariants());
        }
    }

    #[test]
    fn concatenated_records_read_back_in_order() {
        let frag = chain_fragmentation();
        let mut buf = Vec::new();
        for f in frag.fragments() {
            write_fragment_snapshot(f, &mut buf).unwrap();
        }
        let mut r = Cursor::new(buf);
        for i in 0..frag.num_fragments() {
            let back = read_fragment_snapshot(&mut r).unwrap();
            assert_same_fragment(frag.fragment(i), &back);
        }
        ensure_fully_consumed(&mut r).unwrap();
    }

    #[test]
    fn fragments_file_round_trip_and_rehydration() {
        let frag = chain_fragmentation();
        let path = std::env::temp_dir().join("grape_fragments_roundtrip.bin");
        write_fragments_file(frag.fragments(), &path).unwrap();
        let back = read_fragments_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.len(), frag.num_fragments());

        let assignment: Vec<u32> = (0..frag.gp().num_vertices() as VertexId)
            .map(|v| frag.gp().owner(v) as u32)
            .collect();
        let rehydrated = rehydrate_fragmentation(
            back,
            assignment,
            frag.source().clone(),
            frag.strategy_name(),
        )
        .unwrap();
        assert_eq!(rehydrated.num_fragments(), frag.num_fragments());
        for i in 0..frag.num_fragments() {
            assert_same_fragment(frag.fragment(i), rehydrated.fragment(i));
        }
        // G_P is re-derived, not persisted: routing must agree.
        for v in frag.gp().border_vertices() {
            assert_eq!(frag.gp().owner(v), rehydrated.gp().owner(v));
        }
        assert_eq!(rehydrated.num_border_vertices(), frag.num_border_vertices());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let frag = chain_fragmentation();
        let mut buf = Vec::new();
        write_fragment_snapshot(frag.fragment(0), &mut buf).unwrap();
        let mut wrong = buf.clone();
        wrong[0] = b'X';
        assert!(read_fragment_snapshot(&mut Cursor::new(wrong)).is_err());
        buf.truncate(buf.len() - 2);
        assert!(read_fragment_snapshot(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn fragments_file_rejects_trailing_garbage() {
        let frag = chain_fragmentation();
        let path = std::env::temp_dir().join("grape_fragments_trailing.bin");
        write_fragments_file(frag.fragments(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0x7f);
        std::fs::write(&path, bytes).unwrap();
        let err = read_fragments_file(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(
            err.to_string().contains("trailing"),
            "expected trailing-bytes rejection, got {err}"
        );
    }

    #[test]
    fn malformed_borders_are_rejected() {
        let frag = chain_fragmentation();
        let mut v = fragment_to_value(frag.fragment(1));
        if let Value::Map(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "out_border" {
                    *val = Value::Seq(vec![Value::UInt(10_000)]);
                }
            }
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(FRAGMENT_MAGIC);
        write_value_tree(&mut buf, &v).unwrap();
        let err = read_fragment_snapshot(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
    }
}
