//! # grape-partition
//!
//! Graph partition strategies, fragments and the fragmentation graph for the
//! GRAPE (SIGMOD 2017) reproduction.
//!
//! Following Section 2 of the paper, a partition strategy `P` splits a graph
//! `G` into fragments `F = (F_1, …, F_m)`, one per (virtual) worker.  Each
//! fragment knows
//!
//! * its *inner* vertices (the vertices assigned to it),
//! * its *outer copies* — endpoints of cross edges owned by other fragments,
//! * its border sets `F_i.I` (inner vertices with an incoming cross edge) and
//!   `F_i.O` (outer copies reachable by an outgoing cross edge),
//!
//! and the [`fragmentation_graph::FragmentationGraph`] `G_P` indexes, for every
//! border vertex, which fragments hold it on which side — this is what the
//! GRAPE engine uses to deduce message destinations.
//!
//! Strategies provided (Section 6, "Graph partition"):
//!
//! * [`edge_cut::HashEdgeCut`] and [`edge_cut::RangeEdgeCut`] — simple edge-cut
//!   baselines,
//! * [`metis_like::MetisLike`] — a multilevel heavy-edge-matching partitioner
//!   standing in for METIS (the paper's default),
//! * [`vertex_cut::GreedyVertexCut`] — PowerGraph-style greedy vertex cut,
//! * [`grid::OneDPartition`] / [`grid::TwoDPartition`] — 1-D / 2-D partitions,
//! * [`streaming::StreamingPartition`] — LDG / Fennel streaming heuristics.

pub mod delta;
pub mod edge_cut;
pub mod fragment;
pub mod fragmentation_graph;
pub mod grid;
pub mod metis_like;
pub mod quality;
pub mod shard;
pub mod snapshot;
pub mod strategy;
pub mod streaming;
pub mod vertex_cut;

pub use delta::{DeltaApplication, FragmentDelta};
pub use fragment::{Fragment, Fragmentation};
pub use fragmentation_graph::{BorderScope, FragmentationGraph};
pub use snapshot::{LoadedSpill, QuerySpillStore, SnapshotError, SpillStoreStats};
pub use strategy::{PartitionError, PartitionStrategy};
