//! A multilevel edge-cut partitioner standing in for METIS (the paper's
//! default partition strategy, Section 6 / 7).
//!
//! The classic multilevel scheme is implemented from scratch:
//!
//! 1. **Coarsening** — repeated heavy-edge matching contracts matched vertex
//!    pairs into super-vertices until the graph is small,
//! 2. **Initial partitioning** — greedy BFS region growing over the coarsest
//!    graph, balanced by accumulated vertex weight,
//! 3. **Uncoarsening + refinement** — the assignment is projected back level
//!    by level and improved with boundary Kernighan–Lin/Fiduccia–Mattheyses
//!    style passes that move border vertices to the neighbouring part with
//!    the largest positive gain, subject to a balance constraint.

use std::sync::Arc;

use grape_graph::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::fragment::{build_edge_cut, Fragmentation};
use crate::strategy::{validate, PartitionError, PartitionStrategy};

/// Multilevel METIS-like edge-cut partitioner.
#[derive(Debug, Clone)]
pub struct MetisLike {
    num_fragments: usize,
    /// Allowed imbalance: a part may hold up to `balance_factor × ideal`
    /// vertex weight (METIS default is 1.03; we are slightly more permissive
    /// because the graphs are small).
    balance_factor: f64,
    /// Number of boundary refinement passes per level.
    refinement_passes: usize,
    /// RNG seed controlling matching/tie-breaking order.
    seed: u64,
}

impl MetisLike {
    /// Creates a partitioner with default parameters.
    pub fn new(num_fragments: usize) -> Self {
        MetisLike {
            num_fragments,
            balance_factor: 1.1,
            refinement_passes: 4,
            seed: 42,
        }
    }

    /// Overrides the balance factor (must be ≥ 1).
    pub fn with_balance_factor(mut self, factor: f64) -> Self {
        self.balance_factor = factor.max(1.0);
        self
    }

    /// Overrides the number of refinement passes.
    pub fn with_refinement_passes(mut self, passes: usize) -> Self {
        self.refinement_passes = passes;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A level of the multilevel hierarchy: a weighted graph plus the mapping of
/// the finer level's vertices onto this level's super-vertices.
struct Level {
    /// Undirected weighted adjacency: `adj[v]` = (neighbor, edge weight).
    adj: Vec<Vec<(usize, f64)>>,
    /// Vertex weights (number of original vertices contracted into each).
    vweight: Vec<usize>,
    /// Fine-vertex → coarse-vertex map (from the previous level).
    fine_to_coarse: Vec<usize>,
}

impl PartitionStrategy for MetisLike {
    fn name(&self) -> &str {
        "metis-like"
    }

    fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError> {
        validate(graph, self.num_fragments)?;
        if self.balance_factor < 1.0 {
            return Err(PartitionError::InvalidConfig(
                "balance factor must be >= 1".into(),
            ));
        }
        let assignment = self.compute_assignment(graph);
        Ok(build_edge_cut(
            graph,
            &assignment,
            self.num_fragments,
            self.name(),
        ))
    }
}

impl MetisLike {
    /// Computes the vertex → fragment assignment for the whole multilevel
    /// pipeline.  Exposed for tests and for the quality benchmarks.
    pub fn compute_assignment(&self, graph: &Graph) -> Vec<u32> {
        let n = graph.num_vertices();
        if self.num_fragments == 1 {
            return vec![0; n];
        }
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Base level: symmetrised adjacency with unit edge weights (parallel
        // edges accumulate weight).
        let mut base_adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for e in graph.edges() {
            if e.src == e.dst {
                continue;
            }
            base_adj[e.src as usize].push((e.dst as usize, 1.0));
            base_adj[e.dst as usize].push((e.src as usize, 1.0));
        }
        let mut levels: Vec<Level> = vec![Level {
            adj: base_adj,
            vweight: vec![1; n],
            fine_to_coarse: Vec::new(),
        }];

        // Coarsen until small enough or stuck.
        let target = (self.num_fragments * 16).max(64);
        while levels.last().unwrap().vweight.len() > target {
            let current = levels.last().unwrap();
            let (coarse, map) = coarsen(current, &mut rng);
            let shrink = coarse.vweight.len() as f64 / current.vweight.len() as f64;
            if shrink > 0.95 {
                break; // matching no longer makes progress
            }
            levels.push(Level {
                fine_to_coarse: map,
                ..coarse
            });
        }

        // Initial partition on the coarsest level.
        let coarsest = levels.last().unwrap();
        let total_weight: usize = coarsest.vweight.iter().sum();
        let mut part = initial_partition(coarsest, self.num_fragments, &mut rng);
        let max_part_weight = ((total_weight as f64 / self.num_fragments as f64)
            * self.balance_factor)
            .ceil() as usize;
        refine(
            coarsest,
            &mut part,
            self.num_fragments,
            max_part_weight,
            self.refinement_passes,
        );

        // Project back and refine at every level.
        for level_idx in (1..levels.len()).rev() {
            let fine = &levels[level_idx - 1];
            let map = &levels[level_idx].fine_to_coarse;
            let mut fine_part = vec![0u32; fine.vweight.len()];
            for (v, &c) in map.iter().enumerate() {
                fine_part[v] = part[c];
            }
            refine(
                fine,
                &mut fine_part,
                self.num_fragments,
                max_part_weight,
                self.refinement_passes,
            );
            part = fine_part;
        }
        part
    }
}

/// Heavy-edge matching coarsening step.
fn coarsen(level: &Level, rng: &mut StdRng) -> (Level, Vec<usize>) {
    let n = level.vweight.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut matched = vec![usize::MAX; n];
    let mut num_coarse = 0usize;
    let mut coarse_of = vec![usize::MAX; n];
    for &v in &order {
        if matched[v] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(usize, f64)> = None;
        for &(u, w) in &level.adj[v] {
            if matched[u] == usize::MAX && u != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        let c = num_coarse;
        num_coarse += 1;
        match best {
            Some((u, _)) => {
                matched[v] = u;
                matched[u] = v;
                coarse_of[v] = c;
                coarse_of[u] = c;
            }
            None => {
                matched[v] = v;
                coarse_of[v] = c;
            }
        }
    }

    // Build the coarse graph.
    let mut vweight = vec![0usize; num_coarse];
    for v in 0..n {
        vweight[coarse_of[v]] += level.vweight[v];
    }
    let mut adj_maps: Vec<std::collections::HashMap<usize, f64>> =
        vec![std::collections::HashMap::new(); num_coarse];
    for v in 0..n {
        let cv = coarse_of[v];
        for &(u, w) in &level.adj[v] {
            let cu = coarse_of[u];
            if cu != cv {
                *adj_maps[cv].entry(cu).or_insert(0.0) += w;
            }
        }
    }
    let adj: Vec<Vec<(usize, f64)>> = adj_maps
        .into_iter()
        .map(|m| {
            let mut list: Vec<(usize, f64)> = m.into_iter().collect();
            // HashMap iteration order is unspecified; sort so the whole
            // pipeline stays deterministic for a fixed seed.
            list.sort_unstable_by_key(|&(u, _)| u);
            list
        })
        .collect();
    (
        Level {
            adj,
            vweight,
            fine_to_coarse: Vec::new(),
        },
        coarse_of,
    )
}

/// Greedy BFS region growing initial partition.
fn initial_partition(level: &Level, k: usize, rng: &mut StdRng) -> Vec<u32> {
    let n = level.vweight.len();
    let total: usize = level.vweight.iter().sum();
    let ideal = (total as f64 / k as f64).ceil() as usize;
    let mut part = vec![u32::MAX; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut order_iter = order.iter();
    let mut current = 0u32;
    let mut current_weight = 0usize;
    let mut queue = std::collections::VecDeque::new();

    loop {
        // Find an unassigned seed for the current part.
        if queue.is_empty() {
            let seed = order_iter.by_ref().find(|&&v| part[v] == u32::MAX);
            match seed {
                Some(&v) => queue.push_back(v),
                None => break,
            }
        }
        while let Some(v) = queue.pop_front() {
            if part[v] != u32::MAX {
                continue;
            }
            part[v] = current;
            current_weight += level.vweight[v];
            if current_weight >= ideal && (current as usize) < k - 1 {
                current += 1;
                current_weight = 0;
                queue.clear();
                break;
            }
            for &(u, _) in &level.adj[v] {
                if part[u] == u32::MAX {
                    queue.push_back(u);
                }
            }
        }
        if part.iter().all(|&p| p != u32::MAX) {
            break;
        }
    }
    part
}

/// Boundary refinement: move border vertices to the neighbouring part with
/// the best positive gain while respecting the balance constraint.
fn refine(level: &Level, part: &mut [u32], k: usize, max_weight: usize, passes: usize) {
    let n = level.vweight.len();
    let mut weights = vec![0usize; k];
    for v in 0..n {
        weights[part[v] as usize] += level.vweight[v];
    }
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let from = part[v] as usize;
            // Connectivity of v to each part.
            let mut conn = vec![0.0f64; k];
            for &(u, w) in &level.adj[v] {
                conn[part[u] as usize] += w;
            }
            let mut best_part = from;
            let mut best_gain = 0.0f64;
            for p in 0..k {
                if p == from {
                    continue;
                }
                let gain = conn[p] - conn[from];
                if gain > best_gain && weights[p] + level.vweight[v] <= max_weight {
                    best_gain = gain;
                    best_part = p;
                }
            }
            if best_part != from {
                weights[from] -= level.vweight[v];
                weights[best_part] += level.vweight[v];
                part[v] = best_part as u32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Edge cut of an assignment: the number of edges whose endpoints fall into
/// different parts.  Exposed for the quality tests/benches.
pub fn edge_cut_of(graph: &Graph, assignment: &[u32]) -> usize {
    graph
        .edges()
        .iter()
        .filter(|e| assignment[e.src as usize] != assignment[e.dst as usize])
        .count()
}

impl Level {
    /// Helper constructor used in unit tests.
    #[cfg(test)]
    fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push((b, 1.0));
            adj[b].push((a, 1.0));
        }
        Level {
            adj,
            vweight: vec![1; n],
            fine_to_coarse: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::HashEdgeCut;
    use grape_graph::generators::{power_law, road_grid};
    use grape_graph::types::VertexId as Vid;

    #[test]
    fn produces_valid_balanced_partition() {
        let g = road_grid(16, 16, 1);
        let strategy = MetisLike::new(4);
        let frag = strategy.partition(&g).unwrap();
        assert_eq!(frag.num_fragments(), 4);
        let sizes: Vec<usize> = frag.fragments().iter().map(|f| f.num_inner()).collect();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 256);
        let ideal = 64.0;
        for &s in &sizes {
            assert!(
                (s as f64) < ideal * 1.35 && (s as f64) > ideal * 0.5,
                "imbalanced part: {sizes:?}"
            );
        }
    }

    #[test]
    fn cuts_fewer_edges_than_hash_on_grid() {
        let g = road_grid(24, 24, 2);
        let metis_cut = edge_cut_of(&g, &MetisLike::new(4).compute_assignment(&g));
        let hash_assignment: Vec<u32> = {
            let frag = HashEdgeCut::new(4).partition(&g).unwrap();
            let mut a = vec![0u32; g.num_vertices()];
            for f in frag.fragments() {
                for l in f.inner_locals() {
                    a[f.global_of(l) as usize] = f.id() as u32;
                }
            }
            a
        };
        let hash_cut = edge_cut_of(&g, &hash_assignment);
        assert!(
            metis_cut * 2 < hash_cut,
            "metis-like cut {metis_cut} should be far below hash cut {hash_cut}"
        );
    }

    #[test]
    fn works_on_power_law_graphs() {
        let g = power_law(2000, 8000, 0, 3);
        let frag = MetisLike::new(8).partition(&g).unwrap();
        let total: usize = frag.fragments().iter().map(|f| f.num_inner()).sum();
        assert_eq!(total, 2000);
        assert!(frag.fragments().iter().all(|f| f.check_invariants()));
    }

    #[test]
    fn single_fragment_is_trivial() {
        let g = road_grid(5, 5, 1);
        let assignment = MetisLike::new(1).compute_assignment(&g);
        assert!(assignment.iter().all(|&p| p == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = power_law(500, 2000, 0, 4);
        let a = MetisLike::new(4).with_seed(7).compute_assignment(&g);
        let b = MetisLike::new(4).with_seed(7).compute_assignment(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn coarsening_shrinks_and_preserves_weight() {
        let level = Level::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let (coarse, map) = coarsen(&level, &mut rng);
        assert!(coarse.vweight.len() < 6);
        assert_eq!(coarse.vweight.iter().sum::<usize>(), 6);
        assert_eq!(map.len(), 6);
        assert!(map.iter().all(|&c| c < coarse.vweight.len()));
    }

    #[test]
    fn refinement_reduces_cut_on_a_bad_start() {
        // Two cliques joined by one edge, started with a terrible split.
        let mut edges = Vec::new();
        for a in 0..4 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((3, 4));
        let level = Level::from_edges(8, &edges);
        // Alternating assignment cuts many edges.
        let mut part: Vec<u32> = (0..8).map(|v| (v % 2) as u32).collect();
        refine(&level, &mut part, 2, 5, 8);
        // After refinement each clique should be (mostly) on one side.
        let cut = {
            let mut c = 0;
            for (v, adj) in level.adj.iter().enumerate() {
                for &(u, _) in adj {
                    if u > v && part[u] != part[v] {
                        c += 1;
                    }
                }
            }
            c
        };
        assert!(cut <= 2, "refined cut still {cut}");
    }

    #[test]
    fn edge_cut_of_counts_cross_edges() {
        let g = road_grid(4, 1, 0); // path of 4 vertices
        let cut = edge_cut_of(&g, &[0, 0, 1, 1]);
        // Path 0-1-2-3 stored as bidirectional directed edges: the 1-2 segment
        // contributes two directed edges.
        assert_eq!(cut, 2);
        let all_same: Vec<u32> = vec![0; g.num_vertices() as usize];
        assert_eq!(edge_cut_of(&g, &all_same), 0);
        let _ = g.vertices().collect::<Vec<Vid>>();
    }
}
