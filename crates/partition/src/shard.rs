//! Fragment → worker shard assignment for multi-process execution.
//!
//! When the engine runs under `TransportSpec::Process { workers }` each OS
//! worker subprocess *owns* a subset of the fragments: PEval/IncEval run in
//! the owning process and only messages cross the pipe.  The assignment is
//! a pure function of `(num_fragments, workers)` so that the parent and any
//! external observer (bench harness, tests) agree on ownership without a
//! handshake.
//!
//! Fragments are dealt round-robin (`fragment % workers`), which keeps
//! shard sizes within one of each other for any `m`, and keeps a fragment's
//! owner stable when `m` grows (appended fragments never reshuffle existing
//! ones — relevant once deltas can add fragments).

use crate::delta::{DeltaApplication, FragmentDelta};

/// The worker index that owns `fragment` when `workers` subprocesses are
/// running.  `workers` must be non-zero.
pub fn owner(fragment: usize, workers: usize) -> usize {
    assert!(workers > 0, "shard owner with zero workers");
    fragment % workers
}

/// Round-robin shard assignment: element `w` lists the fragments owned by
/// worker `w`, in increasing order.  Every fragment in `0..num_fragments`
/// appears exactly once across the shards; empty shards are possible only
/// when `workers > num_fragments`.
pub fn shard_assignment(num_fragments: usize, workers: usize) -> Vec<Vec<usize>> {
    assert!(workers > 0, "shard assignment with zero workers");
    let mut shards = vec![Vec::new(); workers];
    for fragment in 0..num_fragments {
        shards[owner(fragment, workers)].push(fragment);
    }
    shards
}

impl DeltaApplication {
    /// The per-fragment delta restrictions that belong to one worker's
    /// shard.  This is what crosses the pipe on an incremental refresh:
    /// each subprocess receives only its own fragments' restrictions, never
    /// the whole graph or another shard's updates.
    pub fn restricted_to(&self, shard: &[usize]) -> Vec<&FragmentDelta> {
        self.affected
            .iter()
            .filter(|fd| shard.contains(&fd.fragment))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::delta::GraphDelta;
    use grape_graph::{Directedness, GraphBuilder};

    use crate::edge_cut::HashEdgeCut;
    use crate::strategy::PartitionStrategy;

    #[test]
    fn assignment_partitions_fragments_exactly() {
        for m in 0..10 {
            for w in 1..6 {
                let shards = shard_assignment(m, w);
                assert_eq!(shards.len(), w);
                let mut seen: Vec<usize> = shards.iter().flatten().copied().collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..m).collect::<Vec<_>>(), "m={m} w={w}");
                for (wi, shard) in shards.iter().enumerate() {
                    for &f in shard {
                        assert_eq!(owner(f, w), wi);
                    }
                }
            }
        }
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let shards = shard_assignment(10, 4);
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn restricted_to_splits_affected_by_shard() {
        // A path graph partitioned into 3 fragments; add edges touching
        // several fragments and check the restrictions split exactly.
        let mut b = GraphBuilder::new(Directedness::Directed);
        for v in 0..11u64 {
            b = b.add_weighted_edge(v, v + 1, 1.0);
        }
        let g = b.build();
        let frags = HashEdgeCut::new(3).partition(&g).expect("partition");
        let delta = GraphDelta::new()
            .add_weighted_edge(0, 5, 1.0)
            .add_weighted_edge(3, 9, 1.0)
            .add_weighted_edge(7, 2, 1.0);
        let applied = frags.apply_delta(&delta).expect("apply");

        let shards = shard_assignment(frags.num_fragments(), 2);
        let total: usize = shards.iter().map(|s| applied.restricted_to(s).len()).sum();
        assert_eq!(total, applied.affected.len(), "restrictions partition");
        for (wi, shard) in shards.iter().enumerate() {
            for fd in applied.restricted_to(shard) {
                assert_eq!(owner(fd.fragment, 2), wi);
                assert!(shard.contains(&fd.fragment));
            }
        }
    }
}
