//! 1-D and 2-D partitions (Section 6: "1-D and 2-D partitions \[12\], which
//! distribute vertex and adjacent matrix to the workers, respectively").
//!
//! * **1-D**: vertices are distributed in contiguous blocks (one block row of
//!   the adjacency matrix per worker) — an edge-cut partition.
//! * **2-D**: the adjacency matrix is tiled into a `pr × pc` processor grid
//!   and every edge `(u, v)` goes to the tile `(block(u), block(v))` — an
//!   edge (vertex-cut style) partition that bounds the number of replicas of
//!   a vertex by `pr + pc`.

use std::sync::Arc;

use grape_graph::graph::Graph;

use crate::fragment::{build_edge_cut, build_vertex_cut, Fragmentation};
use crate::strategy::{validate, PartitionError, PartitionStrategy};

/// 1-D (block-row) partition: contiguous vertex ranges, one per worker.
#[derive(Debug, Clone)]
pub struct OneDPartition {
    num_fragments: usize,
}

impl OneDPartition {
    /// Creates a 1-D partition with `num_fragments` workers.
    pub fn new(num_fragments: usize) -> Self {
        OneDPartition { num_fragments }
    }
}

impl PartitionStrategy for OneDPartition {
    fn name(&self) -> &str {
        "1d-partition"
    }

    fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError> {
        validate(graph, self.num_fragments)?;
        let n = graph.num_vertices();
        let chunk = n.div_ceil(self.num_fragments);
        let assignment: Vec<u32> = graph
            .vertices()
            .map(|v| ((v as usize / chunk).min(self.num_fragments - 1)) as u32)
            .collect();
        Ok(build_edge_cut(
            graph,
            &assignment,
            self.num_fragments,
            self.name(),
        ))
    }
}

/// 2-D (block) partition over a `rows × cols` processor grid.
#[derive(Debug, Clone)]
pub struct TwoDPartition {
    rows: usize,
    cols: usize,
}

impl TwoDPartition {
    /// Creates a 2-D partition over a `rows × cols` grid
    /// (`rows * cols` fragments).
    pub fn new(rows: usize, cols: usize) -> Self {
        TwoDPartition { rows, cols }
    }

    /// Creates a near-square grid with `num_fragments` fragments.
    pub fn squarish(num_fragments: usize) -> Self {
        let rows = (num_fragments as f64).sqrt().floor().max(1.0) as usize;
        let mut rows = rows;
        while !num_fragments.is_multiple_of(rows) {
            rows -= 1;
        }
        TwoDPartition {
            rows,
            cols: num_fragments / rows,
        }
    }
}

impl PartitionStrategy for TwoDPartition {
    fn name(&self) -> &str {
        "2d-partition"
    }

    fn num_fragments(&self) -> usize {
        self.rows * self.cols
    }

    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError> {
        let m = self.num_fragments();
        validate(graph, m)?;
        if self.rows == 0 || self.cols == 0 {
            return Err(PartitionError::InvalidConfig(
                "grid dimensions must be positive".into(),
            ));
        }
        let n = graph.num_vertices();
        let row_chunk = n.div_ceil(self.rows);
        let col_chunk = n.div_ceil(self.cols);
        let assignment: Vec<u32> = graph
            .edges()
            .iter()
            .map(|e| {
                let r = (e.src as usize / row_chunk).min(self.rows - 1);
                let c = (e.dst as usize / col_chunk).min(self.cols - 1);
                (r * self.cols + c) as u32
            })
            .collect();
        Ok(build_vertex_cut(graph, &assignment, m, self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::replication_factor;
    use grape_graph::generators::{power_law, road_grid};

    #[test]
    fn one_d_assigns_contiguous_ranges() {
        let g = road_grid(10, 10, 1);
        let frag = OneDPartition::new(4).partition(&g).unwrap();
        assert_eq!(frag.num_fragments(), 4);
        for f in frag.fragments() {
            let mut globals: Vec<u64> = f.inner_locals().map(|l| f.global_of(l)).collect();
            globals.sort_unstable();
            if globals.len() > 1 {
                assert_eq!(
                    globals[globals.len() - 1] - globals[0] + 1,
                    globals.len() as u64
                );
            }
        }
    }

    #[test]
    fn two_d_covers_every_edge_once() {
        let g = power_law(400, 2000, 0, 2);
        let frag = TwoDPartition::new(2, 2).partition(&g).unwrap();
        assert_eq!(frag.num_fragments(), 4);
        let total: usize = frag.fragments().iter().map(|f| f.num_local_edges()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn two_d_bounds_replication() {
        let g = power_law(600, 4000, 0, 3);
        let frag = TwoDPartition::new(2, 2).partition(&g).unwrap();
        let rf = replication_factor(&frag);
        // 2-D bounds replicas to rows + cols = 4; the average is far below.
        assert!(rf <= 4.0, "replication factor {rf}");
    }

    #[test]
    fn squarish_produces_requested_fragment_count() {
        assert_eq!(TwoDPartition::squarish(6).num_fragments(), 6);
        assert_eq!(TwoDPartition::squarish(9).num_fragments(), 9);
        assert_eq!(TwoDPartition::squarish(7).num_fragments(), 7); // 1 × 7
    }

    #[test]
    fn strategies_report_names() {
        assert_eq!(OneDPartition::new(2).name(), "1d-partition");
        assert_eq!(TwoDPartition::new(2, 2).name(), "2d-partition");
    }
}
