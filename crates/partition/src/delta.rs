//! Applying a [`GraphDelta`] to a [`Fragmentation`]: fragment rebuilds,
//! border-set maintenance and fragmentation-graph (`G_P`) maintenance.
//!
//! The update path of a prepared query (see `grape_core::prepared`) needs
//! three things from the partition layer when `ΔG` arrives:
//!
//! 1. the **updated fragments** — only the fragments whose local structure
//!    (inner vertices, outer copies, local edges, border sets) actually
//!    changed are rebuilt; all others are reused untouched, so their
//!    retained partial results stay valid by construction;
//! 2. the **updated `G_P`** — border sets can grow or shrink with `ΔG`, and
//!    message routing must follow immediately;
//! 3. the **per-fragment restriction of `ΔG`** ([`FragmentDelta`]) — what an
//!    `IncrementalPie` program's rebase step needs in order to convert the
//!    delta into update-parameter messages.
//!
//! Delta application is implemented for **edge-cut** fragmentations (the
//! default strategy family, including [`crate::metis_like::MetisLike`] and
//! the hash/range cuts).  Vertex-cut fragmentations are rejected with
//! [`DeltaError::UnsupportedPartition`]: moving an edge of a shared vertex
//! can re-elect the master replica, which silently re-keys retained state.
//!
//! New vertices introduced by `ΔG` are assigned to fragment `v mod m` — the
//! same stateless rule a streaming partitioner would apply; a later
//! re-partition can rebalance.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use grape_graph::delta::{DeltaError as GraphDeltaError, GraphDelta};
use grape_graph::types::{Edge, VertexId};
use serde::Value;

use crate::fragment::{assemble_edge_cut, build_edge_cut_fragment, Fragment, Fragmentation};
use crate::fragmentation_graph::BorderScope;

/// Errors produced by [`Fragmentation::apply_delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The underlying graph rejected the delta (missing edge/vertex, …).
    Graph(GraphDeltaError),
    /// The fragmentation was not produced by an edge-cut strategy.
    UnsupportedPartition(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Graph(e) => write!(f, "{e}"),
            DeltaError::UnsupportedPartition(kind) => write!(
                f,
                "delta application needs an edge-cut fragmentation, got {kind}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<GraphDeltaError> for DeltaError {
    fn from(e: GraphDeltaError) -> Self {
        DeltaError::Graph(e)
    }
}

/// The restriction of a [`GraphDelta`] to one fragment: the updates that are
/// visible in that fragment's local subgraph.  Handed to
/// `IncrementalPie::rebase` so a program can convert the structural change
/// into update-parameter messages.
///
/// Edge removals implied by a *vertex* removal are not enumerated here (they
/// follow from [`FragmentDelta::removed_vertices`] and the old fragment's
/// adjacency); only explicit edge removals are listed.
#[derive(Debug, Clone)]
pub struct FragmentDelta {
    /// The fragment this restriction belongs to.
    pub fragment: usize,
    /// Inserted edges present in this fragment's local subgraph (global ids).
    pub added_edges: Vec<Edge>,
    /// Explicitly removed edges that were local to this fragment (global ids).
    pub removed_edges: Vec<(VertexId, VertexId)>,
    /// Vertices that are newly present in this fragment (inner or outer copy).
    pub added_vertices: Vec<VertexId>,
    /// Vertices that left this fragment's local vertex set, plus detached
    /// (removed-but-still-owned) inner vertices.
    pub removed_vertices: Vec<VertexId>,
}

/// The result of applying `ΔG` to a fragmentation.
#[derive(Debug, Clone)]
pub struct DeltaApplication {
    /// The updated fragmentation: rebuilt affected fragments, reused
    /// unaffected ones, and a freshly derived `G_P`.
    pub fragmentation: Fragmentation,
    /// One entry per fragment whose structure changed, with the delta
    /// restricted to it.  Fragments not listed here are bit-identical to
    /// before and their retained partial results need no rebase.
    pub affected: Vec<FragmentDelta>,
}

impl Fragmentation {
    /// Applies a batch of graph updates, maintaining fragments, border sets
    /// and the fragmentation graph.  See the module docs for semantics and
    /// the edge-cut restriction.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<DeltaApplication, DeltaError> {
        if self.gp().shared_vertex_routing() {
            return Err(DeltaError::UnsupportedPartition("vertex-cut".to_string()));
        }
        let m = self.num_fragments();
        let old_source = self.source().as_ref();
        let new_source = Arc::new(old_source.apply_delta(delta)?);

        // Extend the vertex → fragment assignment; ids never move, new ids
        // are hashed onto fragments.
        let old_n = self.gp().num_vertices();
        let new_n = new_source.num_vertices();
        let mut assignment: Vec<u32> = (0..old_n as VertexId)
            .map(|v| self.gp().owner(v) as u32)
            .collect();
        assignment.extend((old_n..new_n).map(|v| (v % m) as u32));
        let owner_of = |v: VertexId| assignment[v as usize] as usize;

        // Candidate fragments whose local structure can have changed: the
        // owners of both endpoints of every changed edge (the source's
        // fragment holds the edge and its outer copies; the target's
        // fragment may gain or lose in-border status), the owners of new
        // vertices, and — for removed vertices — the owners of every former
        // neighbor (their fragments held the copies).
        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        for e in delta.added_edges() {
            candidates.insert(owner_of(e.src));
            candidates.insert(owner_of(e.dst));
        }
        for &(src, dst) in delta.removed_edges() {
            candidates.insert(owner_of(src));
            candidates.insert(owner_of(dst));
        }
        // Every new vertex id — explicit insertions and the gap-filling ids
        // implicitly created by edge insertions (ids stay dense) — lands as
        // a fresh inner vertex of its owner.
        for v in old_n as VertexId..new_n as VertexId {
            candidates.insert(owner_of(v));
        }
        for &v in delta.removed_vertices() {
            candidates.insert(owner_of(v));
            for n in old_source.out_neighbors(v) {
                candidates.insert(owner_of(n.target));
            }
            for n in old_source.in_neighbors(v) {
                candidates.insert(owner_of(n.target));
            }
        }

        // Inner vertex lists (global order) for the candidates only.
        let mut inner: HashMap<usize, Vec<VertexId>> =
            candidates.iter().map(|&i| (i, Vec::new())).collect();
        for v in new_source.vertices() {
            if let Some(list) = inner.get_mut(&owner_of(v)) {
                list.push(v);
            }
        }

        // Rebuild candidates; keep the old fragment whenever the rebuild is
        // structurally identical (the delta did not actually touch it).
        // Untouched fragments keep their `Arc`, so every prepared query over
        // the old fragmentation keeps sharing their storage.
        let mut fragments: Vec<Arc<Fragment>> = self.fragments().to_vec();
        let mut affected: Vec<FragmentDelta> = Vec::new();
        for &i in &candidates {
            let rebuilt = build_edge_cut_fragment(&new_source, &assignment, i, &inner[&i]);
            if rebuilt.same_structure(&fragments[i]) {
                continue;
            }
            affected.push(restrict_delta(
                delta,
                i,
                &fragments[i],
                &rebuilt,
                &owner_of,
                new_source.is_directed(),
            ));
            fragments[i] = Arc::new(rebuilt);
        }

        let fragmentation = assemble_edge_cut(
            fragments,
            assignment,
            new_source,
            self.strategy_name().to_string(),
        );
        Ok(DeltaApplication {
            fragmentation,
            affected,
        })
    }
}

/// Restricts `delta` to fragment `i`, given the fragment before and after
/// the rebuild.
fn restrict_delta(
    delta: &GraphDelta,
    i: usize,
    old_frag: &Fragment,
    new_frag: &Fragment,
    owner_of: &dyn Fn(VertexId) -> usize,
    directed: bool,
) -> FragmentDelta {
    // An edge lives in the local subgraph of its source's owner; undirected
    // edges additionally appear (mirrored) in the target's owner.
    let local_edge =
        |src: VertexId, dst: VertexId| owner_of(src) == i || (!directed && owner_of(dst) == i);
    let added_edges: Vec<Edge> = delta
        .added_edges()
        .iter()
        .filter(|e| local_edge(e.src, e.dst))
        .copied()
        .collect();
    let removed_edges: Vec<(VertexId, VertexId)> = delta
        .removed_edges()
        .iter()
        .filter(|&&(s, d)| local_edge(s, d))
        .copied()
        .collect();

    // Vertex membership diff between the old and the new fragment.
    let added_vertices: Vec<VertexId> = new_frag
        .all_locals()
        .map(|l| new_frag.global_of(l))
        .filter(|&g| old_frag.local_of(g).is_none())
        .collect();
    let mut removed_vertices: Vec<VertexId> = old_frag
        .all_locals()
        .map(|l| old_frag.global_of(l))
        .filter(|&g| new_frag.local_of(g).is_none())
        .collect();
    // Detached inner vertices stay present (tombstones) but count as removed
    // for the program's purposes.
    for &v in delta.removed_vertices() {
        if new_frag.local_of(v).is_some() && !removed_vertices.contains(&v) {
            removed_vertices.push(v);
        }
    }

    FragmentDelta {
        fragment: i,
        added_edges,
        removed_edges,
        added_vertices,
        removed_vertices,
    }
}

// ---------------------------------------------------------------------------
// Damage frontier
// ---------------------------------------------------------------------------

/// How far the damage of a **non-monotone** delta spreads across fragments —
/// the policy behind the engine's *bounded refresh* (re-PEval only the
/// damaged fragments instead of everywhere).  A PIE program picks the policy
/// that matches its dependency structure; the partition layer turns it into
/// a concrete fragment set via [`damage_frontier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamagePolicy {
    /// Closure of the structurally changed fragments under **message-flow
    /// reachability** (the program's [`BorderScope`], over the union of the
    /// old and new quotient graphs).  Sound for programs whose fixpoint is
    /// schedule-independent given fixed boundary inputs — the
    /// Assurance-Theorem programs (SSSP, CC, Sim) — *provided* the retained
    /// border values of undamaged fragments are reseeded into the fixpoint
    /// (`IncrementalPie::reseed`): every undamaged fragment's partial is a
    /// function of its own unchanged structure and of inputs from other
    /// undamaged fragments only, so it equals a full recompute's by
    /// construction.
    Reachability,
    /// Whole quotient **connected components** containing a changed
    /// fragment.  For trajectory-dependent programs (CF's SGD epochs): no
    /// boundary exchange between damaged and undamaged fragments may exist
    /// at all, so damage swallows everything transitively connected — but
    /// updates confined to one component leave the others untouched.
    Component,
    /// Changed fragments plus a `k`-hop halo in the (undirected) quotient
    /// graph.  For programs whose partial is a pure function of a bounded
    /// neighborhood — PEval derives it without boundary inputs, so no
    /// reseeding happens under this policy (SubIso: a changed edge can
    /// only enter a fragment's `d_Q`-hop expansion if the fragment is
    /// within `d_Q + 1` quotient hops of the edge's owner, so
    /// `Halo(d_Q + 1)` is sound).
    Halo(usize),
}

/// The derived routing tables of the fragment quotient graph: the
/// message-flow successor sets for every [`BorderScope`] plus the undirected
/// structural adjacency.  They are a pure function of `G_P`, O(m²) small,
/// and consulted on every damage-frontier computation — so a
/// [`Fragmentation`] derives them **once** and caches the result (shared
/// across clones of the same version), and the spill store persists them so
/// rehydration installs the tables instead of re-deriving anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuotientTables {
    /// Successor sets under [`BorderScope::Out`].
    pub successors_out: Vec<BTreeSet<usize>>,
    /// Successor sets under [`BorderScope::In`].
    pub successors_in: Vec<BTreeSet<usize>>,
    /// Successor sets under [`BorderScope::Both`].
    pub successors_both: Vec<BTreeSet<usize>>,
    /// Undirected structural adjacency: fragments sharing a border vertex.
    pub adjacency: Vec<BTreeSet<usize>>,
}

impl QuotientTables {
    /// Derives all four tables from a fragmentation's `G_P` (one pass over
    /// the border vertices per table).
    pub fn derive(frag: &Fragmentation) -> QuotientTables {
        let gp = frag.gp();
        let m = frag.num_fragments();
        let mut tables = QuotientTables {
            successors_out: vec![BTreeSet::new(); m],
            successors_in: vec![BTreeSet::new(); m],
            successors_both: vec![BTreeSet::new(); m],
            adjacency: vec![BTreeSet::new(); m],
        };
        for v in gp.border_vertices() {
            let holders: Vec<usize> = holders_of(frag, v).collect();
            for &i in &holders {
                for dest in gp.route(v, i, BorderScope::Out) {
                    tables.successors_out[i].insert(dest);
                }
                for dest in gp.route(v, i, BorderScope::In) {
                    tables.successors_in[i].insert(dest);
                }
                for dest in gp.route(v, i, BorderScope::Both) {
                    tables.successors_both[i].insert(dest);
                }
                for &j in &holders {
                    if i != j {
                        tables.adjacency[i].insert(j);
                    }
                }
            }
        }
        tables
    }

    /// The successor table of one scope.
    pub fn successors(&self, scope: BorderScope) -> &[BTreeSet<usize>] {
        match scope {
            BorderScope::Out => &self.successors_out,
            BorderScope::In => &self.successors_in,
            BorderScope::Both => &self.successors_both,
        }
    }

    /// Encodes the tables as a value tree (each table a sequence of
    /// ascending-fragment-id sequences) for the spill store.
    pub fn to_value(&self) -> Value {
        let table = |t: &[BTreeSet<usize>]| {
            Value::Seq(
                t.iter()
                    .map(|s| Value::Seq(s.iter().map(|&f| Value::UInt(f as u64)).collect()))
                    .collect(),
            )
        };
        Value::Map(vec![
            ("out".to_string(), table(&self.successors_out)),
            ("in".to_string(), table(&self.successors_in)),
            ("both".to_string(), table(&self.successors_both)),
            ("adj".to_string(), table(&self.adjacency)),
        ])
    }

    /// Decodes the tables back; `num_fragments` bounds every entry (a
    /// persisted fragment id outside the fragmentation is corruption).
    pub fn from_value(v: &Value, num_fragments: usize) -> Result<QuotientTables, String> {
        let table = |name: &str| -> Result<Vec<BTreeSet<usize>>, String> {
            let field = v
                .get_field(name)
                .ok_or_else(|| format!("missing quotient table `{name}`"))?;
            let Value::Seq(rows) = field else {
                return Err(format!("quotient table `{name}` is not a sequence"));
            };
            if rows.len() != num_fragments {
                return Err(format!(
                    "quotient table `{name}` covers {} fragments, expected {num_fragments}",
                    rows.len()
                ));
            }
            rows.iter()
                .map(|row| {
                    let Value::Seq(ids) = row else {
                        return Err(format!("quotient table `{name}` row is not a sequence"));
                    };
                    ids.iter()
                        .map(|id| match id {
                            Value::UInt(f) if (*f as usize) < num_fragments => Ok(*f as usize),
                            _ => Err(format!("quotient table `{name}` id out of range")),
                        })
                        .collect()
                })
                .collect()
        };
        Ok(QuotientTables {
            successors_out: table("out")?,
            successors_in: table("in")?,
            successors_both: table("both")?,
            adjacency: table("adj")?,
        })
    }
}

impl Fragmentation {
    /// The cached quotient tables of this fragmentation version, deriving
    /// them on first use.  Clones of one version share the cache; delta
    /// application produces a fresh (empty) cell for the new version.
    pub fn quotient_tables(&self) -> Arc<QuotientTables> {
        self.quotient_cell()
            .get_or_init(|| Arc::new(QuotientTables::derive(self)))
            .clone()
    }

    /// Installs externally persisted quotient tables (the spill store's
    /// rehydration path) without deriving anything.  Returns `false` if the
    /// cache was already populated — the installed value is then the cached
    /// one and `tables` is dropped.
    pub fn install_quotient_tables(&self, tables: Arc<QuotientTables>) -> bool {
        self.quotient_cell().set(tables).is_ok()
    }

    /// Whether the quotient tables are already materialised (used to pin
    /// that rehydration installed them instead of re-deriving).
    pub fn quotient_tables_cached(&self) -> bool {
        self.quotient_cell().get().is_some()
    }

    /// The message-flow successor sets of the fragment quotient graph: for
    /// every fragment `i`, the fragments an update parameter produced by `i`
    /// can reach under `scope` (derived from `G_P` exactly like the engine's
    /// routing, so the frontier never under-approximates real traffic).
    /// Served from the per-version cache.
    pub fn quotient_successors(&self, scope: BorderScope) -> Vec<BTreeSet<usize>> {
        self.quotient_tables().successors(scope).to_vec()
    }

    /// Undirected structural adjacency of the fragment quotient graph:
    /// fragments are adjacent iff they hold a copy of a common border
    /// vertex (i.e. a cross edge connects them, in either direction).
    /// Served from the per-version cache.
    pub fn quotient_adjacency(&self) -> Vec<BTreeSet<usize>> {
        self.quotient_tables().adjacency.clone()
    }
}

/// Every fragment holding a copy of border vertex `v` (owner, outer-copy
/// holders and in-border holders), deduplicated.
fn holders_of(frag: &Fragmentation, v: VertexId) -> impl Iterator<Item = usize> {
    let gp = frag.gp();
    let mut holders: BTreeSet<usize> = BTreeSet::new();
    holders.insert(gp.owner(v));
    holders.extend(gp.outer_holders(v).iter().map(|&i| i as usize));
    holders.extend(gp.in_holders(v).iter().map(|&i| i as usize));
    holders.into_iter()
}

/// Unions two successor tables (old and new quotient graphs): stale state
/// propagated along an edge that the delta *removed* is still stale, so the
/// frontier must follow both.
fn union_tables(a: Vec<BTreeSet<usize>>, b: Vec<BTreeSet<usize>>) -> Vec<BTreeSet<usize>> {
    a.into_iter()
        .zip(b)
        .map(|(mut x, y)| {
            x.extend(y);
            x
        })
        .collect()
}

/// BFS over a successor table from `seeds`, bounded by `max_hops`
/// (`usize::MAX` = full closure).  Returns the damage mask.
fn bfs_closure(table: &[BTreeSet<usize>], seeds: &[usize], max_hops: usize) -> Vec<bool> {
    let m = table.len();
    let mut damaged = vec![false; m];
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for &s in seeds {
        if s < m && !damaged[s] {
            damaged[s] = true;
            queue.push_back((s, 0));
        }
    }
    while let Some((i, depth)) = queue.pop_front() {
        if depth >= max_hops {
            continue;
        }
        for &j in &table[i] {
            if j < m && !damaged[j] {
                damaged[j] = true;
                queue.push_back((j, depth + 1));
            }
        }
    }
    damaged
}

/// The damage frontier of a non-monotone delta, as computed by
/// [`damage_frontier`].
#[derive(Debug, Clone)]
pub struct DamageFrontier {
    /// Mask of fragments whose retained partial results may be stale and
    /// must be re-rooted with PEval during a bounded refresh.
    pub damaged: Vec<bool>,
    /// The *undamaged* fragments whose retained border values the refresh
    /// must reseed: those with at least one damaged message-flow successor
    /// in the **new** quotient graph (a freshly re-PEval'ed fragment would
    /// otherwise never re-learn the values its undamaged neighbours
    /// contributed).  Only populated under [`DamagePolicy::Reachability`]
    /// — the component closure has no cross-boundary flow by construction,
    /// and halo programs derive their partials without boundary inputs.
    pub reseed_sources: Vec<usize>,
}

impl DamageFrontier {
    /// The damaged fragment ids, ascending.
    pub fn damaged_ids(&self) -> Vec<usize> {
        self.damaged
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Computes the **damage frontier** of a non-monotone delta.  `changed` is
/// the set of structurally changed fragments
/// (`DeltaApplication::affected`), always contained in the damage mask;
/// `old`/`new` are the fragmentations before and after the delta (the
/// closure follows the union of both quotient graphs: stale state
/// propagated along an edge the delta *removed* is still stale).
pub fn damage_frontier(
    old: &Fragmentation,
    new: &Fragmentation,
    changed: &[usize],
    policy: DamagePolicy,
    scope: BorderScope,
) -> DamageFrontier {
    let (damaged, new_successors) = match policy {
        DamagePolicy::Reachability => {
            let new_succ = new.quotient_successors(scope);
            let table = union_tables(old.quotient_successors(scope), new_succ.clone());
            (bfs_closure(&table, changed, usize::MAX), Some(new_succ))
        }
        DamagePolicy::Component => {
            let table = union_tables(old.quotient_adjacency(), new.quotient_adjacency());
            (bfs_closure(&table, changed, usize::MAX), None)
        }
        DamagePolicy::Halo(k) => {
            let table = union_tables(old.quotient_adjacency(), new.quotient_adjacency());
            (bfs_closure(&table, changed, k), None)
        }
    };
    let reseed_sources = new_successors
        .map(|succ| {
            succ.iter()
                .enumerate()
                .filter(|(i, s)| !damaged[*i] && s.iter().any(|&j| damaged[j]))
                .map(|(i, _)| i)
                .collect()
        })
        .unwrap_or_default();
    DamageFrontier {
        damaged,
        reseed_sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::{HashEdgeCut, RangeEdgeCut};
    use crate::strategy::PartitionStrategy;
    use crate::vertex_cut::GreedyVertexCut;
    use grape_graph::builder::GraphBuilder;
    use grape_graph::graph::Graph;

    /// 0 -> 1 -> 2 -> 3 -> 4 -> 5, ranges {0,1,2} and {3,4,5}.
    fn chain() -> (Graph, Fragmentation) {
        let mut b = GraphBuilder::directed();
        for v in 0..5u64 {
            b.push_edge(Edge::weighted(v, v + 1, 1.0));
        }
        let g = b.build();
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        (g, frag)
    }

    /// Rebuilding from scratch must agree with incremental application.
    fn assert_matches_fresh_partition(applied: &DeltaApplication) {
        let fresh = {
            let src = applied.fragmentation.source().clone();
            let m = applied.fragmentation.num_fragments();
            let assignment: Vec<u32> = (0..src.num_vertices() as VertexId)
                .map(|v| applied.fragmentation.gp().owner(v) as u32)
                .collect();
            crate::fragment::build_edge_cut(&src, &assignment, m, "fresh")
        };
        for i in 0..fresh.num_fragments() {
            let a = applied.fragmentation.fragment(i);
            let b = fresh.fragment(i);
            assert_eq!(a.num_inner(), b.num_inner(), "fragment {i} inner");
            assert_eq!(a.num_local(), b.num_local(), "fragment {i} local");
            assert_eq!(
                a.out_border_globals(),
                b.out_border_globals(),
                "fragment {i} F.O"
            );
            assert_eq!(
                a.in_border_globals(),
                b.in_border_globals(),
                "fragment {i} F.I"
            );
            assert_eq!(
                a.num_local_edges(),
                b.num_local_edges(),
                "fragment {i} edges"
            );
            assert!(a.check_invariants());
        }
    }

    #[test]
    fn inserting_a_cross_edge_grows_both_border_sets() {
        let (_, frag) = chain();
        // New cross edge 1 -> 4: F0 gains outer copy 4, F1 gains in-border 4.
        let delta = GraphDelta::new().add_weighted_edge(1, 4, 2.0);
        let applied = frag.apply_delta(&delta).unwrap();
        let f0 = applied.fragmentation.fragment(0);
        let f1 = applied.fragmentation.fragment(1);
        let mut f0_out = f0.out_border_globals();
        f0_out.sort_unstable();
        assert_eq!(f0_out, vec![3, 4]);
        assert!(f1.in_border_globals().contains(&4));
        assert!(applied.fragmentation.gp().is_border(4));
        assert_eq!(applied.affected.len(), 2);
        assert_matches_fresh_partition(&applied);
        // The restriction routes the edge to fragment 0 (owner of vertex 1).
        let d0 = applied.affected.iter().find(|d| d.fragment == 0).unwrap();
        assert_eq!(d0.added_edges.len(), 1);
        assert_eq!(d0.added_vertices, vec![4]);
        let d1 = applied.affected.iter().find(|d| d.fragment == 1).unwrap();
        assert!(
            d1.added_edges.is_empty(),
            "directed edge is not local to F1"
        );
    }

    #[test]
    fn purely_local_insert_affects_one_fragment() {
        let (_, frag) = chain();
        let delta = GraphDelta::new().add_weighted_edge(0, 2, 5.0);
        let applied = frag.apply_delta(&delta).unwrap();
        assert_eq!(applied.affected.len(), 1);
        assert_eq!(applied.affected[0].fragment, 0);
        assert_matches_fresh_partition(&applied);
    }

    #[test]
    fn removing_the_only_cross_edge_clears_the_border() {
        let (_, frag) = chain();
        assert!(frag.gp().is_border(3));
        let delta = GraphDelta::new().remove_edge(2, 3);
        let applied = frag.apply_delta(&delta).unwrap();
        assert!(!applied.fragmentation.gp().is_border(3));
        assert!(applied
            .fragmentation
            .fragment(0)
            .out_border_globals()
            .is_empty());
        assert!(applied
            .fragmentation
            .fragment(1)
            .in_border_globals()
            .is_empty());
        assert_matches_fresh_partition(&applied);
    }

    #[test]
    fn new_vertices_are_hashed_onto_fragments() {
        let (_, frag) = chain();
        // Vertex 7 -> fragment 7 % 2 = 1; edge 5 -> 7 is fragment-local to
        // F1; the implicitly created gap vertex 6 lands in fragment 6 % 2 = 0.
        let delta = GraphDelta::new().add_weighted_edge(5, 7, 1.0);
        let applied = frag.apply_delta(&delta).unwrap();
        assert_eq!(applied.fragmentation.gp().owner(7), 1);
        assert_eq!(applied.affected.len(), 2);
        let d0 = applied.affected.iter().find(|d| d.fragment == 0).unwrap();
        assert_eq!(d0.added_vertices, vec![6], "implicit gap vertex");
        let d1 = applied.affected.iter().find(|d| d.fragment == 1).unwrap();
        assert!(d1.added_vertices.contains(&7));
        assert_eq!(d1.added_edges.len(), 1);
        assert_matches_fresh_partition(&applied);
    }

    #[test]
    fn vertex_removal_drops_copies_everywhere() {
        let (_, frag) = chain();
        let delta = GraphDelta::new().remove_vertex(3);
        let applied = frag.apply_delta(&delta).unwrap();
        // F0 loses the outer copy of 3; F1 keeps the detached inner vertex.
        let f0 = applied.fragmentation.fragment(0);
        let f1 = applied.fragmentation.fragment(1);
        assert!(f0.local_of(3).is_none());
        assert!(f1.local_of(3).is_some(), "tombstone stays with its owner");
        assert!(!applied.fragmentation.gp().is_border(3));
        let d0 = applied.affected.iter().find(|d| d.fragment == 0).unwrap();
        assert!(d0.removed_vertices.contains(&3));
        let d1 = applied.affected.iter().find(|d| d.fragment == 1).unwrap();
        assert!(
            d1.removed_vertices.contains(&3),
            "detached counts as removed"
        );
        assert_matches_fresh_partition(&applied);
    }

    #[test]
    fn untouched_fragments_are_reused_not_rebuilt() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(2, 3)
            .add_edge(4, 5)
            .ensure_vertices(6)
            .build();
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        let delta = GraphDelta::new().add_weighted_edge(0, 1, 9.0);
        let applied = frag.apply_delta(&delta).unwrap();
        assert_eq!(applied.affected.len(), 1);
        assert_eq!(applied.affected[0].fragment, 0);
        // Reused means *shared*: the untouched fragments' `Arc`s survive
        // delta application, so prepared queries over the old fragmentation
        // keep sharing their storage with the updated one.
        assert!(!frag.shares_fragment_storage(&applied.fragmentation, 0));
        assert!(frag.shares_fragment_storage(&applied.fragmentation, 1));
        assert!(frag.shares_fragment_storage(&applied.fragmentation, 2));
    }

    #[test]
    fn undirected_cross_insert_is_local_to_both_owners() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(2, 3)
            .build();
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let delta = GraphDelta::new().add_edge(1, 2);
        let applied = frag.apply_delta(&delta).unwrap();
        assert_eq!(applied.affected.len(), 2);
        for d in &applied.affected {
            assert_eq!(d.added_edges.len(), 1, "fragment {}", d.fragment);
        }
        assert_matches_fresh_partition(&applied);
    }

    #[test]
    fn empty_delta_changes_nothing() {
        let (_, frag) = chain();
        let applied = frag.apply_delta(&GraphDelta::new()).unwrap();
        assert!(applied.affected.is_empty());
        assert_eq!(applied.fragmentation.num_fragments(), 2);
    }

    #[test]
    fn vertex_cut_partitions_are_rejected() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .build();
        let frag = GreedyVertexCut::new(2).partition(&g).unwrap();
        let err = frag
            .apply_delta(&GraphDelta::new().add_edge(0, 2))
            .unwrap_err();
        assert!(matches!(err, DeltaError::UnsupportedPartition(_)));
    }

    #[test]
    fn graph_level_errors_pass_through() {
        let (_, frag) = chain();
        let err = frag
            .apply_delta(&GraphDelta::new().remove_edge(5, 0))
            .unwrap_err();
        assert!(matches!(err, DeltaError::Graph(_)));
    }

    /// 0→1→2→3→4→5→6→7→8, three range fragments {0..2}, {3..5}, {6..8}.
    fn three_chain() -> (Graph, Fragmentation) {
        let mut b = GraphBuilder::directed();
        for v in 0..8u64 {
            b.push_edge(Edge::weighted(v, v + 1, 1.0));
        }
        let g = b.build();
        let frag = RangeEdgeCut::new(3).partition(&g).unwrap();
        (g, frag)
    }

    fn ids(mask: &[bool]) -> Vec<usize> {
        mask.iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn quotient_successors_follow_the_scope() {
        let (_, frag) = three_chain();
        // Out scope: values for outer copies flow downstream (F0 holds the
        // outer copy of 3 owned by F1, …).
        let out = frag.quotient_successors(BorderScope::Out);
        assert_eq!(out[0].iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(out[1].iter().copied().collect::<Vec<_>>(), vec![2]);
        assert!(out[2].is_empty());
        // In scope: values of in-border vertices flow back to copy holders.
        let inward = frag.quotient_successors(BorderScope::In);
        assert!(inward[0].is_empty());
        assert_eq!(inward[1].iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(inward[2].iter().copied().collect::<Vec<_>>(), vec![1]);
        // Structural adjacency is the symmetric closure.
        let adj = frag.quotient_adjacency();
        assert_eq!(adj[1].iter().copied().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn quotient_tables_cache_is_shared_and_value_round_trips() {
        let (_, frag) = three_chain();
        let t1 = frag.quotient_tables();
        let t2 = frag.clone().quotient_tables();
        assert!(Arc::ptr_eq(&t1, &t2), "clones share one derivation");
        assert_eq!(
            t1.successors(BorderScope::Out),
            frag.quotient_successors(BorderScope::Out)
        );

        let v = t1.to_value();
        let back = QuotientTables::from_value(&v, frag.num_fragments()).unwrap();
        assert_eq!(back, *t1);
        assert!(
            QuotientTables::from_value(&v, 2).is_err(),
            "fragment-count mismatch is corruption"
        );
    }

    #[test]
    fn installed_quotient_tables_are_served_without_derivation() {
        let (_, frag) = three_chain();
        let derived = QuotientTables::derive(&frag);
        let applied = frag.apply_delta(&GraphDelta::new()).unwrap();
        assert!(
            !applied.fragmentation.quotient_tables_cached(),
            "a new version starts with an empty cell"
        );
        assert!(applied
            .fragmentation
            .install_quotient_tables(Arc::new(derived.clone())));
        assert!(applied.fragmentation.quotient_tables_cached());
        assert_eq!(*applied.fragmentation.quotient_tables(), derived);
    }

    #[test]
    fn reachability_frontier_spreads_downstream_only() {
        let (_, frag) = three_chain();
        // Delete the fragment-local edge 4 → 5: only F1 is rebuilt.
        let applied = frag
            .apply_delta(&GraphDelta::new().remove_edge(4, 5))
            .unwrap();
        assert_eq!(applied.affected.len(), 1);
        assert_eq!(applied.affected[0].fragment, 1);
        let mask = damage_frontier(
            &frag,
            &applied.fragmentation,
            &[1],
            DamagePolicy::Reachability,
            BorderScope::Out,
        );
        // Under Out scope stale state can only flow downstream: F0 is safe.
        assert_eq!(ids(&mask.damaged), vec![1, 2]);
        assert_eq!(mask.damaged_ids(), vec![1, 2]);
        // Its retained border values must be reseeded into the fixpoint iff
        // it feeds a damaged fragment — F0 feeds F1.
        assert_eq!(mask.reseed_sources, vec![0]);
    }

    #[test]
    fn component_frontier_swallows_the_connected_component() {
        let (_, frag) = three_chain();
        let applied = frag
            .apply_delta(&GraphDelta::new().remove_edge(4, 5))
            .unwrap();
        let mask = damage_frontier(
            &frag,
            &applied.fragmentation,
            &[1],
            DamagePolicy::Component,
            BorderScope::Both,
        );
        assert_eq!(ids(&mask.damaged), vec![0, 1, 2]);
        assert!(
            mask.reseed_sources.is_empty(),
            "component closure never reseeds"
        );
    }

    #[test]
    fn halo_frontier_is_hop_bounded() {
        let (_, frag) = three_chain();
        let applied = frag
            .apply_delta(&GraphDelta::new().remove_edge(1, 2))
            .unwrap();
        let zero = damage_frontier(
            &frag,
            &applied.fragmentation,
            &[0],
            DamagePolicy::Halo(0),
            BorderScope::Out,
        );
        assert_eq!(ids(&zero.damaged), vec![0]);
        let one = damage_frontier(
            &frag,
            &applied.fragmentation,
            &[0],
            DamagePolicy::Halo(1),
            BorderScope::Out,
        );
        assert_eq!(ids(&one.damaged), vec![0, 1]);
    }

    #[test]
    fn frontier_follows_removed_edges_through_the_old_quotient() {
        // Deleting the only cross edge between F0 and F1 still damages F1
        // under Reachability: stale state flowed along it before the delta,
        // and the new quotient graph no longer records the adjacency.
        let (_, frag) = chain();
        let applied = frag
            .apply_delta(&GraphDelta::new().remove_edge(2, 3))
            .unwrap();
        assert!(!applied.fragmentation.gp().is_border(3));
        let changed: Vec<usize> = applied.affected.iter().map(|d| d.fragment).collect();
        let mask = damage_frontier(
            &frag,
            &applied.fragmentation,
            &changed,
            DamagePolicy::Reachability,
            BorderScope::Out,
        );
        assert!(
            mask.damaged[1],
            "downstream fragment must be damaged via the OLD edge"
        );
    }

    #[test]
    fn disconnected_components_stay_undamaged() {
        // Two disjoint chains in separate fragments.
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .build();
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        let applied = frag
            .apply_delta(&GraphDelta::new().remove_edge(0, 1))
            .unwrap();
        for policy in [
            DamagePolicy::Reachability,
            DamagePolicy::Component,
            DamagePolicy::Halo(9),
        ] {
            let mask = damage_frontier(
                &frag,
                &applied.fragmentation,
                &[0],
                policy,
                BorderScope::Out,
            );
            assert_eq!(ids(&mask.damaged), vec![0], "{policy:?}");
        }
    }

    #[test]
    fn hash_cut_round_trips_a_mixed_delta() {
        let mut b = GraphBuilder::directed();
        for v in 0..20u64 {
            b.push_edge(Edge::weighted(v, (v * 7 + 1) % 20, 1.0 + v as f64));
        }
        let g = b.build();
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let delta = GraphDelta::new()
            .add_weighted_edge(3, 18, 0.5)
            .add_weighted_edge(20, 4, 2.0)
            .remove_edge(0, 1);
        let applied = frag.apply_delta(&delta).unwrap();
        assert_matches_fresh_partition(&applied);
        assert_eq!(applied.fragmentation.source().num_vertices(), 21);
    }
}
