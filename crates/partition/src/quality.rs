//! Partition quality metrics: edge cut, balance, replication factor and
//! border-vertex counts.  Used by tests, by the load balancer, and by the
//! ablation benches that compare partition strategies.

use crate::fragment::Fragmentation;

/// Summary statistics of a fragmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of fragments.
    pub num_fragments: usize,
    /// Number of cross-fragment (cut) directed edges.
    pub cut_edges: usize,
    /// Fraction of edges cut.
    pub cut_ratio: f64,
    /// Largest fragment inner-vertex count divided by the ideal size.
    pub vertex_balance: f64,
    /// Largest fragment local-edge count divided by the ideal size.
    pub edge_balance: f64,
    /// Average number of copies (inner + outer) per vertex.
    pub replication_factor: f64,
    /// Total number of distinct border vertices.
    pub border_vertices: usize,
}

/// Computes all quality statistics of a fragmentation.
pub fn evaluate(frag: &Fragmentation) -> PartitionQuality {
    let g = frag.source();
    let m = frag.num_fragments();
    let n = g.num_vertices().max(1);

    let cut_edges = cut_edge_count(frag);
    let total_directed_edges: usize = frag
        .fragments()
        .iter()
        .map(|f| f.num_local_edges())
        .sum::<usize>()
        .max(1);

    let max_inner = frag
        .fragments()
        .iter()
        .map(|f| f.num_inner())
        .max()
        .unwrap_or(0);
    let ideal_inner = n as f64 / m as f64;
    let max_edges = frag
        .fragments()
        .iter()
        .map(|f| f.num_local_edges())
        .max()
        .unwrap_or(0);
    let ideal_edges = total_directed_edges as f64 / m as f64;

    PartitionQuality {
        num_fragments: m,
        cut_edges,
        cut_ratio: cut_edges as f64 / total_directed_edges as f64,
        vertex_balance: max_inner as f64 / ideal_inner.max(1.0),
        edge_balance: max_edges as f64 / ideal_edges.max(1.0),
        replication_factor: replication_factor(frag),
        border_vertices: frag.num_border_vertices(),
    }
}

/// Number of local directed edges whose target is an outer copy, i.e. edges
/// crossing fragments.
pub fn cut_edge_count(frag: &Fragmentation) -> usize {
    frag.fragments()
        .iter()
        .map(|f| {
            f.inner_locals()
                .map(|l| {
                    f.out_edges(l)
                        .iter()
                        .filter(|n| !f.is_inner(n.target as u32))
                        .count()
                })
                .sum::<usize>()
        })
        .sum()
}

/// Average number of fragment-local copies per vertex (1.0 means no
/// replication at all; edge-cut partitions replicate border vertices as outer
/// copies, vertex-cut partitions replicate shared endpoints).
pub fn replication_factor(frag: &Fragmentation) -> f64 {
    let n = frag.source().num_vertices();
    if n == 0 {
        return 1.0;
    }
    let copies: usize = frag.fragments().iter().map(|f| f.num_local()).sum();
    copies as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::{HashEdgeCut, RangeEdgeCut};
    use crate::metis_like::MetisLike;
    use crate::strategy::PartitionStrategy;
    use grape_graph::generators::road_grid;

    #[test]
    fn single_fragment_quality_is_trivial() {
        let g = road_grid(8, 8, 1);
        let frag = HashEdgeCut::new(1).partition(&g).unwrap();
        let q = evaluate(&frag);
        assert_eq!(q.cut_edges, 0);
        assert_eq!(q.border_vertices, 0);
        assert!((q.replication_factor - 1.0).abs() < 1e-9);
        assert!((q.vertex_balance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metis_like_beats_hash_on_cut_ratio() {
        let g = road_grid(20, 20, 2);
        let hash_q = evaluate(&HashEdgeCut::new(4).partition(&g).unwrap());
        let metis_q = evaluate(&MetisLike::new(4).partition(&g).unwrap());
        assert!(metis_q.cut_ratio < hash_q.cut_ratio);
        assert!(metis_q.cut_edges < hash_q.cut_edges);
    }

    #[test]
    fn balance_close_to_one_for_range_partition() {
        let g = road_grid(16, 16, 3);
        let q = evaluate(&RangeEdgeCut::new(4).partition(&g).unwrap());
        assert!(
            q.vertex_balance <= 1.01,
            "vertex balance {}",
            q.vertex_balance
        );
    }

    #[test]
    fn replication_factor_counts_outer_copies() {
        let g = road_grid(4, 1, 0); // path 0-1-2-3
        let frag = RangeEdgeCut::new(2).partition(&g).unwrap();
        // Fragments {0,1} and {2,3}; each side holds one outer copy of the other.
        let rf = replication_factor(&frag);
        assert!(rf > 1.0 && rf <= 1.5);
        assert_eq!(cut_edge_count(&frag), 2); // bidirectional road segment 1-2
    }
}
