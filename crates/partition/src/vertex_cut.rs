//! Greedy vertex-cut partitioning (PowerGraph-style), Section 6 "vertex cut
//! … for graphs with small vertex cut-set".
//!
//! Edges are streamed and each edge is assigned to a fragment using the
//! classic greedy heuristic: prefer fragments that already host both
//! endpoints, then one endpoint, then the least-loaded fragment.  Vertices
//! incident to edges in several fragments become replicated border vertices.

use std::sync::Arc;

use grape_graph::graph::Graph;

use crate::fragment::{build_vertex_cut, Fragmentation};
use crate::strategy::{validate, PartitionError, PartitionStrategy};

/// Greedy vertex-cut strategy.
#[derive(Debug, Clone)]
pub struct GreedyVertexCut {
    num_fragments: usize,
}

impl GreedyVertexCut {
    /// Creates a greedy vertex-cut strategy with `num_fragments` fragments.
    pub fn new(num_fragments: usize) -> Self {
        GreedyVertexCut { num_fragments }
    }

    /// Computes the edge → fragment assignment (exposed for tests).
    pub fn compute_edge_assignment(&self, graph: &Graph) -> Vec<u32> {
        let m = self.num_fragments;
        let n = graph.num_vertices();
        // Which fragments already host each vertex (bitset over ≤ 64 fragments,
        // falling back to "any" beyond that — benches never exceed 64).
        let mut hosted = vec![0u64; n];
        let mut load = vec![0usize; m];
        let mut assignment = Vec::with_capacity(graph.num_edges());

        for e in graph.edges() {
            let hs = hosted[e.src as usize];
            let hd = hosted[e.dst as usize];
            let both = hs & hd;
            let either = hs | hd;
            let pick_least_loaded = |mask: u64, load: &[usize]| -> Option<usize> {
                (0..m.min(64))
                    .filter(|&i| mask & (1u64 << i) != 0)
                    .min_by_key(|&i| load[i])
            };
            let target = if both != 0 {
                pick_least_loaded(both, &load).unwrap()
            } else if either != 0 {
                pick_least_loaded(either, &load).unwrap()
            } else {
                (0..m).min_by_key(|&i| load[i]).unwrap()
            };
            assignment.push(target as u32);
            load[target] += 1;
            if target < 64 {
                hosted[e.src as usize] |= 1u64 << target;
                hosted[e.dst as usize] |= 1u64 << target;
            }
        }
        assignment
    }
}

impl PartitionStrategy for GreedyVertexCut {
    fn name(&self) -> &str {
        "greedy-vertex-cut"
    }

    fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError> {
        validate(graph, self.num_fragments)?;
        if self.num_fragments > 64 {
            return Err(PartitionError::InvalidConfig(
                "greedy vertex cut supports at most 64 fragments".into(),
            ));
        }
        let assignment = self.compute_edge_assignment(graph);
        Ok(build_vertex_cut(
            graph,
            &assignment,
            self.num_fragments,
            self.name(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::replication_factor;
    use grape_graph::generators::power_law;

    #[test]
    fn every_edge_assigned_and_loads_balanced() {
        let g = power_law(500, 3000, 0, 1);
        let strategy = GreedyVertexCut::new(4);
        let assignment = strategy.compute_edge_assignment(&g);
        assert_eq!(assignment.len(), g.num_edges());
        let mut load = vec![0usize; 4];
        for &a in &assignment {
            load[a as usize] += 1;
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(max < min * 2 + 50, "unbalanced loads {load:?}");
    }

    #[test]
    fn produces_valid_fragmentation() {
        let g = power_law(300, 1500, 0, 2);
        let frag = GreedyVertexCut::new(3).partition(&g).unwrap();
        assert_eq!(frag.num_fragments(), 3);
        let total_edges: usize = frag.fragments().iter().map(|f| f.num_local_edges()).sum();
        assert_eq!(total_edges, g.num_edges());
        assert!(frag.fragments().iter().all(|f| f.check_invariants()));
    }

    #[test]
    fn replication_factor_is_modest_on_power_law_graphs() {
        let g = power_law(1000, 6000, 0, 3);
        let frag = GreedyVertexCut::new(4).partition(&g).unwrap();
        let rf = replication_factor(&frag);
        assert!(rf >= 1.0);
        assert!(
            rf < 3.0,
            "replication factor {rf} too high for greedy placement"
        );
    }

    #[test]
    fn rejects_too_many_fragments() {
        let g = power_law(100, 300, 0, 4);
        assert!(GreedyVertexCut::new(100).partition(&g).is_err());
    }
}
