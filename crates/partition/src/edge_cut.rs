//! Simple edge-cut strategies: hash and contiguous-range vertex assignment.

use std::sync::Arc;

use grape_graph::graph::Graph;

use crate::fragment::{build_edge_cut, Fragmentation};
use crate::strategy::{validate, PartitionError, PartitionStrategy};

/// Edge-cut partition assigning vertex `v` to fragment `hash(v) mod m`.
///
/// This is the classic Pregel-style default: perfectly balanced in vertex
/// count, oblivious to locality (high edge cut), and therefore a useful
/// worst-case-ish baseline against [`crate::metis_like::MetisLike`].
#[derive(Debug, Clone)]
pub struct HashEdgeCut {
    num_fragments: usize,
}

impl HashEdgeCut {
    /// Creates a hash edge-cut strategy producing `num_fragments` fragments.
    pub fn new(num_fragments: usize) -> Self {
        HashEdgeCut { num_fragments }
    }
}

/// A cheap, well-mixing 64-bit integer hash (splitmix64 finalizer), used to
/// spread vertex ids over fragments/workers.  Public because the baseline
/// engines hash-partition vertices the same way.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl PartitionStrategy for HashEdgeCut {
    fn name(&self) -> &str {
        "hash-edge-cut"
    }

    fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError> {
        validate(graph, self.num_fragments)?;
        let m = self.num_fragments as u64;
        let assignment: Vec<u32> = graph.vertices().map(|v| (mix64(v) % m) as u32).collect();
        Ok(build_edge_cut(
            graph,
            &assignment,
            self.num_fragments,
            self.name(),
        ))
    }
}

/// Edge-cut partition assigning contiguous vertex-id ranges to fragments.
///
/// When vertex ids carry locality (road grids, generator output) this keeps
/// neighbourhoods together and produces far fewer border vertices than
/// hashing.
#[derive(Debug, Clone)]
pub struct RangeEdgeCut {
    num_fragments: usize,
}

impl RangeEdgeCut {
    /// Creates a range edge-cut strategy producing `num_fragments` fragments.
    pub fn new(num_fragments: usize) -> Self {
        RangeEdgeCut { num_fragments }
    }
}

impl PartitionStrategy for RangeEdgeCut {
    fn name(&self) -> &str {
        "range-edge-cut"
    }

    fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError> {
        validate(graph, self.num_fragments)?;
        let n = graph.num_vertices();
        let m = self.num_fragments;
        let chunk = n.div_ceil(m);
        let assignment: Vec<u32> = graph
            .vertices()
            .map(|v| ((v as usize / chunk).min(m - 1)) as u32)
            .collect();
        Ok(build_edge_cut(graph, &assignment, m, self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape_graph::generators::{power_law, road_grid};

    #[test]
    fn hash_partition_is_balanced() {
        let g = power_law(1000, 4000, 0, 1);
        let frag = HashEdgeCut::new(4).partition(&g).unwrap();
        assert_eq!(frag.num_fragments(), 4);
        let sizes: Vec<usize> = frag.fragments().iter().map(|f| f.num_inner()).collect();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 1000);
        for &s in &sizes {
            assert!(s > 150 && s < 350, "imbalanced fragment of size {s}");
        }
    }

    #[test]
    fn range_partition_keeps_grid_locality() {
        let g = road_grid(20, 20, 3);
        let hash_frag = HashEdgeCut::new(4).partition(&g).unwrap();
        let range_frag = RangeEdgeCut::new(4).partition(&g).unwrap();
        assert!(
            range_frag.num_border_vertices() < hash_frag.num_border_vertices(),
            "range ({}) should cut less than hash ({})",
            range_frag.num_border_vertices(),
            hash_frag.num_border_vertices()
        );
    }

    #[test]
    fn every_vertex_owned_exactly_once() {
        let g = power_law(500, 1500, 0, 2);
        for strategy in [
            &HashEdgeCut::new(3) as &dyn PartitionStrategy,
            &RangeEdgeCut::new(3),
        ] {
            let frag = strategy.partition(&g).unwrap();
            let mut owned = vec![0usize; g.num_vertices()];
            for f in frag.fragments() {
                for l in f.inner_locals() {
                    owned[f.global_of(l) as usize] += 1;
                }
            }
            assert!(
                owned.iter().all(|&c| c == 1),
                "strategy {}",
                strategy.name()
            );
        }
    }

    #[test]
    fn one_fragment_degenerates_to_whole_graph() {
        let g = road_grid(5, 5, 1);
        let frag = RangeEdgeCut::new(1).partition(&g).unwrap();
        assert_eq!(frag.fragment(0).num_inner(), 25);
        assert_eq!(frag.num_border_vertices(), 0);
    }

    #[test]
    fn rejects_zero_fragments() {
        let g = road_grid(3, 3, 1);
        assert!(HashEdgeCut::new(0).partition(&g).is_err());
    }

    #[test]
    fn mix64_spreads_consecutive_keys() {
        let buckets: Vec<u64> = (0..32u64).map(|v| mix64(v) % 4).collect();
        let count0 = buckets.iter().filter(|&&b| b == 0).count();
        assert!(
            count0 > 2 && count0 < 16,
            "poor spread: {count0}/32 in bucket 0"
        );
    }
}
