//! The partition strategy abstraction (paper: the strategy `P` picked in the
//! configuration panel, Fig. 1).

use std::sync::Arc;

use grape_graph::graph::Graph;

use crate::fragment::Fragmentation;

/// Errors raised by partition strategies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The requested number of fragments is zero.
    ZeroFragments,
    /// The graph has no vertices.
    EmptyGraph,
    /// Strategy-specific configuration problem.
    InvalidConfig(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroFragments => write!(f, "number of fragments must be positive"),
            PartitionError::EmptyGraph => write!(f, "cannot partition an empty graph"),
            PartitionError::InvalidConfig(msg) => write!(f, "invalid partition config: {msg}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A graph partition strategy `P`.
///
/// Strategies are cheap, cloneable configuration objects; the expensive work
/// happens in [`PartitionStrategy::partition`].  The paper stresses that `G`
/// is partitioned *once for all queries* of a class — callers are expected to
/// cache the returned [`Fragmentation`].
pub trait PartitionStrategy {
    /// Human-readable strategy name (used in logs and benchmark output).
    fn name(&self) -> &str;

    /// Number of fragments this strategy produces.
    fn num_fragments(&self) -> usize;

    /// Partitions the graph into fragments.
    fn partition_arc(&self, graph: &Arc<Graph>) -> Result<Fragmentation, PartitionError>;

    /// Convenience wrapper taking the graph by value/clone-into-Arc.
    fn partition(&self, graph: &Graph) -> Result<Fragmentation, PartitionError> {
        self.partition_arc(&Arc::new(graph.clone()))
    }
}

/// Shared validation for strategies.
pub(crate) fn validate(graph: &Graph, num_fragments: usize) -> Result<(), PartitionError> {
    if num_fragments == 0 {
        return Err(PartitionError::ZeroFragments);
    }
    if graph.num_vertices() == 0 {
        return Err(PartitionError::EmptyGraph);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::HashEdgeCut;
    use grape_graph::builder::GraphBuilder;

    #[test]
    fn validate_rejects_zero_fragments_and_empty_graphs() {
        let g = GraphBuilder::directed().add_edge(0, 1).build();
        assert_eq!(validate(&g, 0), Err(PartitionError::ZeroFragments));
        let empty = GraphBuilder::directed().build();
        assert_eq!(validate(&empty, 2), Err(PartitionError::EmptyGraph));
        assert_eq!(validate(&g, 2), Ok(()));
    }

    #[test]
    fn error_display_messages() {
        assert!(PartitionError::ZeroFragments
            .to_string()
            .contains("positive"));
        assert!(PartitionError::EmptyGraph.to_string().contains("empty"));
        assert!(PartitionError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn partition_by_ref_matches_partition_arc() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build();
        let strategy = HashEdgeCut::new(2);
        let a = strategy.partition(&g).unwrap();
        let b = strategy.partition_arc(&Arc::new(g)).unwrap();
        assert_eq!(a.num_fragments(), b.num_fragments());
        assert_eq!(a.fragment(0).num_inner(), b.fragment(0).num_inner());
    }
}
