//! Graph readers and writers: plain-text edge lists and binary snapshots.
//!
//! The text format is whitespace separated, one edge per line:
//!
//! ```text
//! # comment lines start with '#' or '%'
//! <src> <dst> [weight] [label]
//! ```
//!
//! which is compatible with the SNAP-style edge lists the paper's datasets
//! (liveJournal, traffic) are distributed in.  [`Graph`] additionally
//! implements `serde::{Serialize, Deserialize}`, and
//! [`write_binary_snapshot`] / [`read_binary_snapshot`] persist that serde
//! tree in a compact length-prefixed binary envelope — the first step of the
//! persistent fragment storage roadmap (graphs no longer need to be re-parsed
//! or re-generated per process).

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize, Value};

use crate::graph::{Directedness, Graph};
use crate::types::{Edge, Label, VertexId, Weight, NO_LABEL, UNIT_WEIGHT};

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that could not be parsed, with its 1-based line number.
    Parse { line: usize, content: String },
    /// A binary snapshot that is malformed or from an unknown format version.
    Snapshot(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "cannot parse edge list line {line}: {content:?}")
            }
            IoError::Snapshot(reason) => write!(f, "invalid binary snapshot: {reason}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from any reader.
pub fn read_edge_list<R: BufRead>(reader: R, directedness: Directedness) -> Result<Graph, IoError> {
    let mut edges = Vec::new();
    let mut max_vertex: Option<VertexId> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = || IoError::Parse {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let src: VertexId = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let dst: VertexId = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let weight: Weight = match parts.next() {
            Some(w) => w.parse().map_err(|_| parse_err())?,
            None => UNIT_WEIGHT,
        };
        let label: Label = match parts.next() {
            Some(l) => l.parse().map_err(|_| parse_err())?,
            None => NO_LABEL,
        };
        max_vertex = Some(max_vertex.map_or(src.max(dst), |m| m.max(src).max(dst)));
        edges.push(Edge::new(src, dst, weight, label));
    }
    let n = max_vertex.map_or(0, |m| m as usize + 1);
    let labels = vec![NO_LABEL; n];
    Ok(Graph::from_parts(directedness, n, edges, labels))
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    directedness: Directedness,
) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file), directedness)
}

/// Writes the graph's edge list (weight and label included) to a writer.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# grape edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(w, "{} {} {} {}", e.src, e.dst, e.weight, e.label)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph's edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

// ---------------------------------------------------------------------------
// Binary snapshots
// ---------------------------------------------------------------------------

/// Magic header of a binary graph snapshot: "GRPS" + format version 1.
const SNAPSHOT_MAGIC: &[u8; 5] = b"GRPS\x01";

// One-byte tags of the binary `Value` encoding.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn write_len<W: Write>(w: &mut W, len: usize) -> io::Result<()> {
    w.write_all(&(len as u64).to_le_bytes())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_len(w, s.len())?;
    w.write_all(s.as_bytes())
}

/// Encodes one serde `Value` tree: a tag byte, then a fixed-width payload
/// (integers and floats little-endian) or a length-prefixed body.
fn write_value<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    match v {
        Value::Null => w.write_all(&[TAG_NULL]),
        Value::Bool(false) => w.write_all(&[TAG_FALSE]),
        Value::Bool(true) => w.write_all(&[TAG_TRUE]),
        Value::UInt(n) => {
            w.write_all(&[TAG_UINT])?;
            w.write_all(&n.to_le_bytes())
        }
        Value::Int(n) => {
            w.write_all(&[TAG_INT])?;
            w.write_all(&n.to_le_bytes())
        }
        Value::Float(f) => {
            w.write_all(&[TAG_FLOAT])?;
            w.write_all(&f.to_bits().to_le_bytes())
        }
        Value::Str(s) => {
            w.write_all(&[TAG_STR])?;
            write_str(w, s)
        }
        Value::Seq(items) => {
            w.write_all(&[TAG_SEQ])?;
            write_len(w, items.len())?;
            for item in items {
                write_value(w, item)?;
            }
            Ok(())
        }
        Value::Map(entries) => {
            w.write_all(&[TAG_MAP])?;
            write_len(w, entries.len())?;
            for (k, v) in entries {
                write_str(w, k)?;
                write_value(w, v)?;
            }
            Ok(())
        }
    }
}

/// Encodes one serde [`Value`] tree to a writer in the tagged
/// little-endian format of the binary snapshots.  Public building block of
/// the persistent-storage stack: `grape-partition`'s fragment snapshots and
/// the prepared-query spill files compose their records out of these trees.
/// The encoding is self-delimiting, so records can be concatenated into one
/// stream and read back one at a time with [`read_value_tree`].
pub fn write_value_tree<W: Write>(writer: &mut W, value: &Value) -> Result<(), IoError> {
    write_value(writer, value)?;
    Ok(())
}

/// Decodes exactly one [`Value`] tree from a reader, leaving the reader
/// positioned at the first byte after it (concatenation-friendly: no
/// internal buffering, no lookahead).  Counterpart of [`write_value_tree`].
pub fn read_value_tree<R: Read>(reader: &mut R) -> Result<Value, IoError> {
    read_value(reader)
}

/// Asserts that a reader is exhausted: one more readable byte is a format
/// error.  Whole-file readers call this after decoding their value tree so
/// that trailing garbage — e.g. a spill file whose concatenated records got
/// out of sync with its declared count — is rejected instead of silently
/// ignored.
pub fn ensure_fully_consumed<R: Read>(reader: &mut R) -> Result<(), IoError> {
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Ok(0) => Ok(()),
        Ok(_) => Err(IoError::Snapshot(
            "trailing bytes after the encoded value tree".to_string(),
        )),
        Err(e) => Err(IoError::Io(e)),
    }
}

fn read_exact_buf<R: Read>(r: &mut R, n: usize) -> Result<Vec<u8>, IoError> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_len<R: Read>(r: &mut R) -> Result<usize, IoError> {
    usize::try_from(read_u64(r)?).map_err(|_| IoError::Snapshot("length overflow".to_string()))
}

fn read_str<R: Read>(r: &mut R) -> Result<String, IoError> {
    let len = read_len(r)?;
    let bytes = read_exact_buf(r, len)?;
    String::from_utf8(bytes).map_err(|_| IoError::Snapshot("non-UTF-8 string".to_string()))
}

fn read_value<R: Read>(r: &mut R) -> Result<Value, IoError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_UINT => Ok(Value::UInt(read_u64(r)?)),
        TAG_INT => Ok(Value::Int(read_u64(r)? as i64)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(read_u64(r)?))),
        TAG_STR => Ok(Value::Str(read_str(r)?)),
        TAG_SEQ => {
            let len = read_len(r)?;
            let mut items = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                items.push(read_value(r)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let len = read_len(r)?;
            let mut entries = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                let k = read_str(r)?;
                let v = read_value(r)?;
                entries.push((k, v));
            }
            Ok(Value::Map(entries))
        }
        other => Err(IoError::Snapshot(format!("unknown value tag {other}"))),
    }
}

/// Writes a binary snapshot of the graph (magic header + the serde `Value`
/// tree in a tagged, length-prefixed little-endian encoding).
pub fn write_binary_snapshot<W: Write>(graph: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(SNAPSHOT_MAGIC)?;
    write_value(&mut w, &graph.to_value())?;
    w.flush()?;
    Ok(())
}

/// Reads a graph back from a binary snapshot produced by
/// [`write_binary_snapshot`].
///
/// The snapshot must cover the whole input: unconsumed bytes after the
/// encoded value tree are rejected as corruption (a truncated *next* record
/// glued to a valid one would otherwise read back silently).
pub fn read_binary_snapshot<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(IoError::Snapshot(
            "bad magic header (not a grape binary snapshot, or wrong version)".to_string(),
        ));
    }
    let value = read_value(&mut r)?;
    ensure_fully_consumed(&mut r)?;
    Graph::from_value(&value).map_err(|e| IoError::Snapshot(e.to_string()))
}

/// Writes a binary snapshot to a file path.
pub fn write_binary_snapshot_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_binary_snapshot(graph, file)
}

/// Reads a binary snapshot from a file path.
pub fn read_binary_snapshot_file<P: AsRef<Path>>(path: P) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_binary_snapshot(file)
}

// ---------------------------------------------------------------------------
// Crash-safe file replacement
// ---------------------------------------------------------------------------

/// The sibling temp path a crash-safe write stages into: `<path>.tmp`.
///
/// Public so that store readers can recognise (and clean) the leftovers of a
/// write that crashed between staging and rename — a `.tmp` file is never
/// valid data.
pub fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes a file **atomically**: the content is staged into
/// [`tmp_sibling`]`(path)`, flushed and fsynced, then renamed over `path`.
/// A crash at any point leaves either the old file intact or an orphaned
/// `.tmp` that readers ignore — never a half-written file under the final
/// name.  The parent directory is fsynced best-effort after the rename so
/// the new directory entry is durable too.
///
/// On error the staged temp file is removed.
pub fn atomic_write_file<E, F>(path: &Path, write: F) -> Result<(), E>
where
    E: From<io::Error>,
    F: FnOnce(&mut BufWriter<std::fs::File>) -> Result<(), E>,
{
    let tmp = tmp_sibling(path);
    let staged: Result<(), E> = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(())
    })();
    if let Err(e) = staged {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(E::from(e));
    }
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use std::io::Cursor;

    #[test]
    fn parses_basic_edge_list_with_comments() {
        let text = "# header\n0 1\n1 2 3.5\n% another comment\n2 0 1.0 7\n\n";
        let g = read_edge_list(Cursor::new(text), Directedness::Directed).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(1)[0].weight, 3.5);
        assert_eq!(g.out_neighbors(2)[0].label, 7);
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(text), Directedness::Directed).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing\n"), Directedness::Undirected).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let g = GraphBuilder::directed()
            .add_labeled_edge(0, 1, 2.0, 3)
            .add_labeled_edge(1, 4, 0.5, 9)
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf), Directedness::Directed).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.out_neighbors(1)[0].label, 9);
        assert_eq!(back.out_neighbors(0)[0].weight, 2.0);
    }

    #[test]
    fn file_roundtrip() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build();
        let dir = std::env::temp_dir();
        let path = dir.join("grape_io_test_edges.txt");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path, Directedness::Undirected).unwrap();
        assert_eq!(back.num_edges(), 2);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn binary_snapshot_roundtrip_preserves_everything() {
        let g = GraphBuilder::directed()
            .add_labeled_edge(0, 1, 2.5, 3)
            .add_labeled_edge(1, 4, 0.125, 9)
            .set_vertex_label(4, 7)
            .ensure_vertices(6)
            .build();
        let mut buf = Vec::new();
        write_binary_snapshot(&g, &mut buf).unwrap();
        let back = read_binary_snapshot(Cursor::new(buf)).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.is_directed(), g.is_directed());
        assert_eq!(back.vertex_label(4), 7);
        assert_eq!(back.out_neighbors(0)[0].weight, 2.5);
        assert_eq!(back.out_neighbors(1)[0].label, 9);
        assert!(back.check_invariants());
    }

    #[test]
    fn binary_snapshot_file_roundtrip() {
        let g = GraphBuilder::undirected()
            .add_weighted_edge(0, 1, 4.0)
            .add_edge(1, 2)
            .build();
        let path = std::env::temp_dir().join("grape_io_test_snapshot.bin");
        write_binary_snapshot_file(&g, &path).unwrap();
        let back = read_binary_snapshot_file(&path).unwrap();
        assert_eq!(back.num_edges(), 2);
        assert!(!back.is_directed());
        assert_eq!(back.out_neighbors(0)[0].weight, 4.0);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn binary_snapshot_rejects_wrong_magic() {
        let err = read_binary_snapshot(Cursor::new(b"NOPE\x01garbage".to_vec())).unwrap_err();
        assert!(matches!(err, IoError::Snapshot(_)), "got {err:?}");
    }

    #[test]
    fn binary_snapshot_rejects_truncation() {
        let g = GraphBuilder::directed().add_edge(0, 1).build();
        let mut buf = Vec::new();
        write_binary_snapshot(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary_snapshot(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, IoError::Io(_) | IoError::Snapshot(_)));
    }

    #[test]
    fn binary_snapshot_rejects_trailing_garbage() {
        let g = GraphBuilder::directed().add_edge(0, 1).build();
        let mut buf = Vec::new();
        write_binary_snapshot(&g, &mut buf).unwrap();
        buf.push(0x42);
        let err = read_binary_snapshot(Cursor::new(buf)).unwrap_err();
        match err {
            IoError::Snapshot(reason) => assert!(reason.contains("trailing"), "{reason}"),
            other => panic!("expected snapshot error, got {other}"),
        }
    }

    #[test]
    fn atomic_write_lands_whole_or_not_at_all() {
        let path = std::env::temp_dir().join("grape_io_test_atomic.bin");
        let _ = std::fs::remove_file(&path);
        atomic_write_file::<IoError, _>(&path, |w| {
            w.write_all(b"first")?;
            Ok(())
        })
        .unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(
            !tmp_sibling(&path).exists(),
            "temp staged file renamed away"
        );

        // A failing writer leaves the previous content untouched and no temp.
        let err = atomic_write_file::<IoError, _>(&path, |w| {
            w.write_all(b"half-")?;
            Err(IoError::Snapshot("boom".to_string()))
        })
        .unwrap_err();
        assert!(matches!(err, IoError::Snapshot(_)));
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(!tmp_sibling(&path).exists(), "failed stage cleaned up");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tmp_sibling_appends_suffix_in_place() {
        let p = Path::new("/a/b/query-3.base");
        assert_eq!(tmp_sibling(p), Path::new("/a/b/query-3.base.tmp"));
    }

    #[test]
    fn value_trees_concatenate_and_read_back_one_at_a_time() {
        let a = GraphBuilder::directed().add_edge(0, 1).build();
        let b = GraphBuilder::directed()
            .add_edge(1, 2)
            .add_edge(2, 3)
            .build();
        let mut buf = Vec::new();
        write_value_tree(&mut buf, &a.to_value()).unwrap();
        write_value_tree(&mut buf, &b.to_value()).unwrap();
        let mut r = Cursor::new(buf);
        let a2 = Graph::from_value(&read_value_tree(&mut r).unwrap()).unwrap();
        let b2 = Graph::from_value(&read_value_tree(&mut r).unwrap()).unwrap();
        ensure_fully_consumed(&mut r).unwrap();
        assert_eq!(a2.num_edges(), 1);
        assert_eq!(b2.num_edges(), 2);
    }
}
