//! Plain-text edge-list readers/writers.
//!
//! The format is whitespace separated, one edge per line:
//!
//! ```text
//! # comment lines start with '#' or '%'
//! <src> <dst> [weight] [label]
//! ```
//!
//! which is compatible with the SNAP-style edge lists the paper's datasets
//! (liveJournal, traffic) are distributed in.  [`Graph`] additionally
//! implements `serde::{Serialize, Deserialize}` for binary/JSON snapshots.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::graph::{Directedness, Graph};
use crate::types::{Edge, Label, VertexId, Weight, NO_LABEL, UNIT_WEIGHT};

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that could not be parsed, with its 1-based line number.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "cannot parse edge list line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from any reader.
pub fn read_edge_list<R: BufRead>(reader: R, directedness: Directedness) -> Result<Graph, IoError> {
    let mut edges = Vec::new();
    let mut max_vertex: Option<VertexId> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_err = || IoError::Parse {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let src: VertexId = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let dst: VertexId = parts
            .next()
            .ok_or_else(parse_err)?
            .parse()
            .map_err(|_| parse_err())?;
        let weight: Weight = match parts.next() {
            Some(w) => w.parse().map_err(|_| parse_err())?,
            None => UNIT_WEIGHT,
        };
        let label: Label = match parts.next() {
            Some(l) => l.parse().map_err(|_| parse_err())?,
            None => NO_LABEL,
        };
        max_vertex = Some(max_vertex.map_or(src.max(dst), |m| m.max(src).max(dst)));
        edges.push(Edge::new(src, dst, weight, label));
    }
    let n = max_vertex.map_or(0, |m| m as usize + 1);
    let labels = vec![NO_LABEL; n];
    Ok(Graph::from_parts(directedness, n, edges, labels))
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    directedness: Directedness,
) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file), directedness)
}

/// Writes the graph's edge list (weight and label included) to a writer.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# grape edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(w, "{} {} {} {}", e.src, e.dst, e.weight, e.label)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph's edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use std::io::Cursor;

    #[test]
    fn parses_basic_edge_list_with_comments() {
        let text = "# header\n0 1\n1 2 3.5\n% another comment\n2 0 1.0 7\n\n";
        let g = read_edge_list(Cursor::new(text), Directedness::Directed).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(1)[0].weight, 3.5);
        assert_eq!(g.out_neighbors(2)[0].label, 7);
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(text), Directedness::Directed).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list(Cursor::new("# nothing\n"), Directedness::Undirected).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let g = GraphBuilder::directed()
            .add_labeled_edge(0, 1, 2.0, 3)
            .add_labeled_edge(1, 4, 0.5, 9)
            .build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(Cursor::new(buf), Directedness::Directed).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.out_neighbors(1)[0].label, 9);
        assert_eq!(back.out_neighbors(0)[0].weight, 2.0);
    }

    #[test]
    fn file_roundtrip() {
        let g = GraphBuilder::undirected()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build();
        let dir = std::env::temp_dir();
        let path = dir.join("grape_io_test_edges.txt");
        write_edge_list_file(&g, &path).unwrap();
        let back = read_edge_list_file(&path, Directedness::Undirected).unwrap();
        assert_eq!(back.num_edges(), 2);
        let _ = std::fs::remove_file(path);
    }
}
