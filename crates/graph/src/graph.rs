//! The immutable, CSR-backed graph type `G = (V, E, L)` of the paper.

use serde::{Deserialize, Serialize};

use crate::csr::{Csr, Neighbor};
use crate::types::{Edge, Label, VertexId, NO_LABEL};

/// Whether the graph is directed or undirected (paper: "directed or
/// undirected" graphs, Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Directedness {
    /// Edges are ordered pairs; `out_neighbors` and `in_neighbors` differ.
    Directed,
    /// Every logical edge `{u, v}` is reachable from both endpoints; the edge
    /// list stores it once, the adjacency twice.
    Undirected,
}

/// An immutable labeled, weighted graph over dense vertex ids `0..n`.
///
/// The structure keeps:
/// * the raw edge list (used by partition strategies),
/// * a forward CSR index (`out_neighbors`),
/// * a reverse CSR index (`in_neighbors`, needed by graph simulation and by
///   the computation of `Fi.I` border sets),
/// * one label per vertex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    directedness: Directedness,
    num_vertices: usize,
    edges: Vec<Edge>,
    out: Csr,
    r#in: Csr,
    vertex_labels: Vec<Label>,
}

impl Graph {
    /// Assembles a graph from its parts.  `edges` stores each logical edge
    /// once, also for undirected graphs.  Prefer [`crate::builder::GraphBuilder`].
    pub fn from_parts(
        directedness: Directedness,
        num_vertices: usize,
        edges: Vec<Edge>,
        vertex_labels: Vec<Label>,
    ) -> Self {
        debug_assert_eq!(vertex_labels.len(), num_vertices);
        let (forward, backward) = match directedness {
            Directedness::Directed => {
                let rev: Vec<Edge> = edges.iter().map(|e| e.reversed()).collect();
                (
                    Csr::from_edges(num_vertices, &edges),
                    Csr::from_edges(num_vertices, &rev),
                )
            }
            Directedness::Undirected => {
                let mut sym = Vec::with_capacity(edges.len() * 2);
                for e in &edges {
                    sym.push(*e);
                    if e.src != e.dst {
                        sym.push(e.reversed());
                    }
                }
                let csr = Csr::from_edges(num_vertices, &sym);
                (csr.clone(), csr)
            }
        };
        Graph {
            directedness,
            num_vertices,
            edges,
            out: forward,
            r#in: backward,
            vertex_labels,
        }
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directedness == Directedness::Directed
    }

    /// Directedness of the graph.
    pub fn directedness(&self) -> Directedness {
        self.directedness
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of logical edges `|E|` (undirected edges counted once).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices as VertexId
    }

    /// The raw edge list (each logical edge once).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing adjacency of `v` (both directions for undirected graphs).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[Neighbor] {
        self.out.neighbors(v)
    }

    /// Incoming adjacency of `v` (same as outgoing for undirected graphs).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[Neighbor] {
        self.r#in.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.r#in.degree(v)
    }

    /// Label of vertex `v` (paper: `L(v)`), [`NO_LABEL`] when unlabeled.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> Label {
        self.vertex_labels
            .get(v as usize)
            .copied()
            .unwrap_or(NO_LABEL)
    }

    /// All vertex labels, indexed by vertex id.
    pub fn vertex_labels(&self) -> &[Label] {
        &self.vertex_labels
    }

    /// Returns `true` when the vertex id is within bounds.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.num_vertices
    }

    /// The set of distinct vertex labels present in the graph.
    pub fn distinct_vertex_labels(&self) -> Vec<Label> {
        let mut labels: Vec<Label> = self.vertex_labels.clone();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// An undirected view of this graph: same vertices and labels, edges made
    /// symmetric.  Used by connected components over directed inputs.
    pub fn to_undirected(&self) -> Graph {
        if self.directedness == Directedness::Undirected {
            return self.clone();
        }
        Graph::from_parts(
            Directedness::Undirected,
            self.num_vertices,
            self.edges.clone(),
            self.vertex_labels.clone(),
        )
    }

    /// Sum of all vertex degrees divided by `|V|`; a quick density statistic
    /// used by the load balancer and by workload descriptions.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        self.out.num_entries() as f64 / self.num_vertices as f64
    }

    /// Structural invariants used by tests:
    /// * both CSR indexes are well formed,
    /// * every edge endpoint is a valid vertex,
    /// * the label vector covers every vertex.
    pub fn check_invariants(&self) -> bool {
        self.out.check_invariants()
            && self.r#in.check_invariants()
            && self.vertex_labels.len() == self.num_vertices
            && self
                .edges
                .iter()
                .all(|e| self.contains_vertex(e.src) && self.contains_vertex(e.dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        GraphBuilder::new(Directedness::Directed)
            .add_weighted_edge(0, 1, 1.0)
            .add_weighted_edge(0, 2, 2.0)
            .add_weighted_edge(1, 3, 3.0)
            .add_weighted_edge(2, 3, 4.0)
            .build()
    }

    #[test]
    fn directed_in_and_out_neighbors_differ() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
        let ins: Vec<VertexId> = g.in_neighbors(3).iter().map(|n| n.target).collect();
        assert_eq!(ins, vec![1, 2]);
    }

    #[test]
    fn undirected_adjacency_is_symmetric() {
        let g = GraphBuilder::new(Directedness::Undirected)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_neighbors(0)[0].target, 1);
        assert_eq!(g.out_neighbors(2)[0].target, 1);
    }

    #[test]
    fn undirected_self_loop_stored_once() {
        let g = GraphBuilder::new(Directedness::Undirected)
            .add_edge(0, 0)
            .add_edge(0, 1)
            .build();
        assert_eq!(g.out_degree(0), 2); // self loop once + edge to 1
    }

    #[test]
    fn labels_default_to_no_label() {
        let g = diamond();
        assert_eq!(g.vertex_label(0), NO_LABEL);
        assert_eq!(g.vertex_label(3), NO_LABEL);
    }

    #[test]
    fn to_undirected_makes_edges_reachable_both_ways() {
        let g = diamond().to_undirected();
        assert!(!g.is_directed());
        assert_eq!(g.out_degree(3), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn invariants_hold() {
        assert!(diamond().check_invariants());
    }

    #[test]
    fn average_degree() {
        let g = diamond();
        assert!((g.average_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_preserves_structure() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.out_degree(0), g.out_degree(0));
    }
}
