//! Pattern graphs `Q = (V_Q, E_Q, L_Q)` for graph pattern matching
//! (Section 5.1 of the paper: graph simulation and subgraph isomorphism).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::types::Label;

/// A small, directed, node-labeled pattern graph.
///
/// Query nodes are dense `0..k` indices (`u32` because patterns are tiny).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    labels: Vec<Label>,
    edges: Vec<(u32, u32)>,
    out: Vec<Vec<u32>>,
    r#in: Vec<Vec<u32>>,
}

impl Pattern {
    /// Creates a pattern with `labels.len()` query nodes carrying the given
    /// labels and the given directed query edges.
    pub fn new(labels: Vec<Label>, edges: Vec<(u32, u32)>) -> Self {
        let k = labels.len();
        let mut out = vec![Vec::new(); k];
        let mut r#in = vec![Vec::new(); k];
        for &(u, v) in &edges {
            assert!(
                (u as usize) < k && (v as usize) < k,
                "pattern edge out of bounds"
            );
            out[u as usize].push(v);
            r#in[v as usize].push(u);
        }
        Pattern {
            labels,
            edges,
            out,
            r#in,
        }
    }

    /// Single-node pattern, matching every vertex with `label`.
    pub fn single(label: Label) -> Self {
        Pattern::new(vec![label], Vec::new())
    }

    /// Number of query nodes `|V_Q|`.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges `|E_Q|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Label of query node `u` (paper: `L_Q(u)`).
    pub fn label(&self, u: u32) -> Label {
        self.labels[u as usize]
    }

    /// All query node labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// All query edges.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Children of query node `u`.
    pub fn children(&self, u: u32) -> &[u32] {
        &self.out[u as usize]
    }

    /// Parents of query node `u`.
    pub fn parents(&self, u: u32) -> &[u32] {
        &self.r#in[u as usize]
    }

    /// Diameter `d_Q` of the pattern: the maximum over all connected node
    /// pairs of the length of the shortest (undirected) path between them.
    /// Used by the SubIso PIE program to bound the neighborhood
    /// `N_{d_Q}(v)` shipped to each fragment (Section 5.1).
    pub fn diameter(&self) -> usize {
        let k = self.num_nodes();
        if k == 0 {
            return 0;
        }
        // Undirected adjacency for the BFS.
        let mut adj = vec![Vec::new(); k];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v as usize);
            adj[v as usize].push(u as usize);
        }
        let mut best = 0usize;
        let mut dist = vec![usize::MAX; k];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..k {
            dist.iter_mut().for_each(|d| *d = usize::MAX);
            dist[s] = 0;
            queue.clear();
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        best = best.max(dist[v]);
                        queue.push_back(v);
                    }
                }
            }
        }
        best
    }

    /// Generates a random connected pattern with `nodes` query nodes and
    /// approximately `edges` query edges, labels drawn from `alphabet`.
    ///
    /// This mirrors the paper's workload: "20 pattern queries … controlled by
    /// `|Q| = (|V_Q|, |E_Q|)`, using labels drawn from the graphs".
    pub fn random(nodes: usize, edges: usize, alphabet: &[Label], seed: u64) -> Self {
        assert!(nodes > 0, "pattern needs at least one node");
        assert!(!alphabet.is_empty(), "label alphabet must not be empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<Label> = (0..nodes)
            .map(|_| *alphabet.choose(&mut rng).expect("non-empty"))
            .collect();
        let mut edge_set = std::collections::BTreeSet::new();
        // Spanning chain to keep the pattern connected.
        for u in 1..nodes as u32 {
            let parent = rng.gen_range(0..u);
            edge_set.insert((parent, u));
        }
        // Extra random edges up to the requested count.
        let mut attempts = 0;
        while edge_set.len() < edges && attempts < edges * 20 {
            let u = rng.gen_range(0..nodes as u32);
            let v = rng.gen_range(0..nodes as u32);
            if u != v {
                edge_set.insert((u, v));
            }
            attempts += 1;
        }
        Pattern::new(labels, edge_set.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Pattern {
        Pattern::new(vec![1, 2, 3], vec![(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_accessors() {
        let p = triangle();
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.label(1), 2);
        assert_eq!(p.children(0), &[1]);
        assert_eq!(p.parents(0), &[2]);
    }

    #[test]
    fn diameter_of_triangle_is_one() {
        assert_eq!(triangle().diameter(), 1);
    }

    #[test]
    fn diameter_of_path() {
        let p = Pattern::new(vec![0, 0, 0, 0], vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(p.diameter(), 3);
    }

    #[test]
    fn diameter_of_single_node_is_zero() {
        assert_eq!(Pattern::single(5).diameter(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        Pattern::new(vec![0, 1], vec![(0, 2)]);
    }

    #[test]
    fn random_pattern_is_connected_and_sized() {
        let p = Pattern::random(8, 15, &[1, 2, 3, 4], 42);
        assert_eq!(p.num_nodes(), 8);
        assert!(p.num_edges() >= 7, "needs at least a spanning tree");
        assert!(p.num_edges() <= 15);
        // connected: diameter is finite and every node reached
        assert!(p.diameter() >= 1);
    }

    #[test]
    fn random_pattern_is_deterministic_per_seed() {
        let a = Pattern::random(6, 10, &[1, 2, 3], 7);
        let b = Pattern::random(6, 10, &[1, 2, 3], 7);
        assert_eq!(a, b);
        let c = Pattern::random(6, 10, &[1, 2, 3], 8);
        assert!(a != c || a.labels() == c.labels()); // different seed usually differs
    }

    #[test]
    fn random_pattern_labels_come_from_alphabet() {
        let alphabet = vec![10, 20, 30];
        let p = Pattern::random(5, 8, &alphabet, 1);
        assert!(p.labels().iter().all(|l| alphabet.contains(l)));
    }
}
