//! Knowledge-graph stand-in (replaces `DBpedia`): power-law topology with a
//! rich alphabet of node *and* edge types.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Directedness, Graph};
use crate::types::{Edge, VertexId};

/// Generates a directed, labeled knowledge-graph-like graph.
///
/// * `num_vertices`, `num_edges` — size of the graph,
/// * `node_labels` — size of the node type alphabet (DBpedia: 200 types),
/// * `edge_labels` — size of the edge type alphabet (DBpedia: 160 types),
/// * `seed` — RNG seed.
///
/// Topology is preferential-attachment-like: the destination of each edge is
/// biased towards earlier (already popular) vertices, producing hubs such as
/// the entity pages everything links to.  Node types are assigned with a
/// Zipf-like skew so that some types are common and some rare, which is what
/// gives pattern queries their selectivity.
pub fn labeled_kg(
    num_vertices: usize,
    num_edges: usize,
    node_labels: u32,
    edge_labels: u32,
    seed: u64,
) -> Graph {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    assert!(node_labels > 0, "knowledge graphs need node labels");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(Directedness::Directed)
        .ensure_vertices(num_vertices)
        .with_capacity(num_edges);

    for _ in 0..num_edges {
        let src = rng.gen_range(0..num_vertices as u64) as VertexId;
        // Preferential-attachment-like skew: square the uniform draw so low
        // ids (hubs) are chosen more often.
        let u: f64 = rng.gen();
        let dst = ((u * u * num_vertices as f64) as u64).min(num_vertices as u64 - 1) as VertexId;
        if src == dst {
            continue;
        }
        let label = if edge_labels > 0 {
            rng.gen_range(1..=edge_labels)
        } else {
            0
        };
        builder.push_edge(Edge::new(src, dst, rng.gen_range(1.0..10.0), label));
    }

    for v in 0..num_vertices as VertexId {
        // Zipf-like node type assignment: type t chosen with weight ~ 1/t.
        let label = zipf_label(&mut rng, node_labels);
        builder.push_vertex_label(v, label);
    }
    builder.build()
}

/// Draws a label in `1..=k` with probability proportional to `1 / label`.
fn zipf_label(rng: &mut StdRng, k: u32) -> u32 {
    let norm: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
    let mut target = rng.gen::<f64>() * norm;
    for i in 1..=k {
        target -= 1.0 / i as f64;
        if target <= 0.0 {
            return i;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_close_to_requested() {
        let g = labeled_kg(1000, 4000, 20, 10, 3);
        assert_eq!(g.num_vertices(), 1000);
        // Self loops are skipped, so the edge count may be slightly lower.
        assert!(g.num_edges() > 3800 && g.num_edges() <= 4000);
    }

    #[test]
    fn node_and_edge_labels_in_range() {
        let g = labeled_kg(300, 1000, 7, 4, 11);
        for v in g.vertices() {
            assert!((1..=7).contains(&g.vertex_label(v)));
        }
        for e in g.edges() {
            assert!((1..=4).contains(&e.label));
        }
    }

    #[test]
    fn node_label_distribution_is_skewed() {
        let g = labeled_kg(5000, 5000, 10, 1, 21);
        let mut counts = [0usize; 11];
        for v in g.vertices() {
            counts[g.vertex_label(v) as usize] += 1;
        }
        assert!(
            counts[1] > counts[10] * 2,
            "label 1 ({}) should be much more common than label 10 ({})",
            counts[1],
            counts[10]
        );
    }

    #[test]
    fn destination_distribution_has_hubs() {
        let g = labeled_kg(2000, 10000, 5, 5, 2);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let avg_in = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_in as f64 > 5.0 * avg_in,
            "max in-degree {max_in} vs avg {avg_in}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = labeled_kg(200, 800, 6, 3, 99);
        let b = labeled_kg(200, 800, 6, 3, 99);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.vertex_labels(), b.vertex_labels());
    }
}
