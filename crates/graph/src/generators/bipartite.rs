//! Bipartite user × item rating graph, the stand-in for `movieLens`
//! (10M ratings between 71 567 users and 10 681 movies) used by the
//! collaborative-filtering experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Directedness, Graph};
use crate::types::{Edge, VertexId};

/// A generated rating workload: the bipartite graph plus the ground-truth
/// latent factors the ratings were sampled from, so that tests and benches
/// can measure how well SGD/ISGD recover them.
#[derive(Debug, Clone)]
pub struct RatingData {
    /// Bipartite graph; vertices `0..num_users` are users, vertices
    /// `num_users..num_users + num_items` are items, and every rating is a
    /// directed user→item edge whose weight is the rating.
    pub graph: Graph,
    /// Number of user vertices.
    pub num_users: usize,
    /// Number of item vertices.
    pub num_items: usize,
    /// Dimensionality of the latent factors the ratings were generated from.
    pub num_factors: usize,
    /// Ground-truth user factors, `num_users × num_factors`.
    pub user_factors: Vec<Vec<f64>>,
    /// Ground-truth item factors, `num_items × num_factors`.
    pub item_factors: Vec<Vec<f64>>,
}

impl RatingData {
    /// Global vertex id of user `u`.
    pub fn user_vertex(&self, u: usize) -> VertexId {
        u as VertexId
    }

    /// Global vertex id of item `i`.
    pub fn item_vertex(&self, i: usize) -> VertexId {
        (self.num_users + i) as VertexId
    }

    /// Whether a vertex id denotes a user.
    pub fn is_user(&self, v: VertexId) -> bool {
        (v as usize) < self.num_users
    }

    /// The ground-truth rating of `(user, item)` (dot product of the latent
    /// factors, clamped to the 1–5 star scale).
    pub fn true_rating(&self, user: usize, item: usize) -> f64 {
        let dot: f64 = self.user_factors[user]
            .iter()
            .zip(&self.item_factors[item])
            .map(|(a, b)| a * b)
            .sum();
        dot.clamp(1.0, 5.0)
    }
}

/// Generates a rating workload.
///
/// * `num_users`, `num_items` — sizes of the two vertex classes,
/// * `num_ratings` — number of observed ratings (edges),
/// * `num_factors` — latent dimensionality of the ground truth,
/// * `seed` — RNG seed.
///
/// Item popularity is Zipf-like (a few blockbusters receive most ratings),
/// ratings are `u·i + noise` clamped to `[1, 5]`.
pub fn bipartite_ratings(
    num_users: usize,
    num_items: usize,
    num_ratings: usize,
    num_factors: usize,
    seed: u64,
) -> RatingData {
    assert!(
        num_users > 0 && num_items > 0,
        "need at least one user and item"
    );
    assert!(num_factors > 0, "need at least one latent factor");
    let mut rng = StdRng::seed_from_u64(seed);

    let factor = |rng: &mut StdRng| -> Vec<f64> {
        (0..num_factors).map(|_| rng.gen_range(0.2..1.5)).collect()
    };
    let user_factors: Vec<Vec<f64>> = (0..num_users).map(|_| factor(&mut rng)).collect();
    let item_factors: Vec<Vec<f64>> = (0..num_items).map(|_| factor(&mut rng)).collect();

    let mut builder = GraphBuilder::new(Directedness::Directed)
        .ensure_vertices(num_users + num_items)
        .with_capacity(num_ratings);

    let mut seen = std::collections::HashSet::with_capacity(num_ratings);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = num_ratings.saturating_mul(10).max(100);
    while added < num_ratings && attempts < max_attempts {
        attempts += 1;
        let user = rng.gen_range(0..num_users);
        // Zipf-like item popularity: square the uniform draw.
        let u: f64 = rng.gen();
        let item = ((u * u * num_items as f64) as usize).min(num_items - 1);
        if !seen.insert((user, item)) {
            continue;
        }
        let dot: f64 = user_factors[user]
            .iter()
            .zip(&item_factors[item])
            .map(|(a, b)| a * b)
            .sum();
        let noise = rng.gen_range(-0.25..0.25);
        let rating = (dot + noise).clamp(1.0, 5.0);
        builder.push_edge(Edge::weighted(
            user as VertexId,
            (num_users + item) as VertexId,
            rating,
        ));
        added += 1;
    }

    RatingData {
        graph: builder.build(),
        num_users,
        num_items,
        num_factors,
        user_factors,
        item_factors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_classes_and_sizes() {
        let data = bipartite_ratings(50, 20, 300, 4, 1);
        assert_eq!(data.graph.num_vertices(), 70);
        assert!(data.graph.num_edges() > 250 && data.graph.num_edges() <= 300);
        assert!(data.is_user(10));
        assert!(!data.is_user(60));
        assert_eq!(data.item_vertex(3), 53);
    }

    #[test]
    fn all_edges_go_from_users_to_items_with_valid_ratings() {
        let data = bipartite_ratings(30, 10, 150, 3, 2);
        for e in data.graph.edges() {
            assert!(data.is_user(e.src));
            assert!(!data.is_user(e.dst));
            assert!((1.0..=5.0).contains(&e.weight), "rating {}", e.weight);
        }
    }

    #[test]
    fn no_duplicate_ratings() {
        let data = bipartite_ratings(20, 10, 150, 2, 3);
        let mut seen = std::collections::HashSet::new();
        for e in data.graph.edges() {
            assert!(
                seen.insert((e.src, e.dst)),
                "duplicate rating {:?}",
                (e.src, e.dst)
            );
        }
    }

    #[test]
    fn ratings_track_ground_truth() {
        let data = bipartite_ratings(40, 15, 400, 3, 4);
        for e in data.graph.edges() {
            let user = e.src as usize;
            let item = e.dst as usize - data.num_users;
            let truth = data.true_rating(user, item);
            assert!(
                (e.weight - truth).abs() <= 0.26,
                "rating too far from truth"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = bipartite_ratings(25, 10, 100, 2, 9);
        let b = bipartite_ratings(25, 10, 100, 2, 9);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.user_factors, b.user_factors);
    }
}
