//! Synthetic workload generators.
//!
//! The paper evaluates GRAPE on four real-life datasets plus synthetic graphs.
//! Those datasets are not redistributable here, so each one has a synthetic
//! stand-in that preserves the structural property the corresponding
//! experiments depend on (see DESIGN.md §3):
//!
//! | paper dataset | generator | preserved property |
//! |---|---|---|
//! | `traffic` (US road network) | [`road_grid`] | huge diameter, constant degree |
//! | `liveJournal` (social network) | [`power_law`] | skewed degrees, small diameter, 100 labels |
//! | `DBpedia` (knowledge base) | [`labeled_kg`] | many node/edge types, power-law degrees |
//! | `movieLens` (ratings) | [`bipartite_ratings`] | sparse user×item bipartite ratings |
//! | synthetic Fig. 9 graphs | [`power_law`] size sweep | controlled `(|V|, |E|)` |
//!
//! All generators are deterministic functions of their seed.

mod bipartite;
mod labeled;
mod power_law;
mod random;
mod road;

pub use bipartite::{bipartite_ratings, RatingData};
pub use labeled::labeled_kg;
pub use power_law::power_law;
pub use random::erdos_renyi;
pub use road::road_grid;
