//! Uniform (Erdős–Rényi `G(n, m)`) random graphs, used mainly by property
//! tests and by ablation benches that need unstructured inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Directedness, Graph};
use crate::types::{Edge, VertexId};

/// Generates a uniform random graph with exactly `num_edges` edges (self
/// loops excluded, duplicates allowed), vertex labels uniform in
/// `1..=num_labels` when `num_labels > 0`, edge weights uniform in `[1, 10)`.
pub fn erdos_renyi(
    num_vertices: usize,
    num_edges: usize,
    num_labels: u32,
    directedness: Directedness,
    seed: u64,
) -> Graph {
    assert!(
        num_vertices > 1 || num_edges == 0,
        "cannot place edges on < 2 vertices"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(directedness)
        .ensure_vertices(num_vertices)
        .with_capacity(num_edges);
    let mut added = 0usize;
    while added < num_edges {
        let src = rng.gen_range(0..num_vertices as u64) as VertexId;
        let dst = rng.gen_range(0..num_vertices as u64) as VertexId;
        if src == dst {
            continue;
        }
        builder.push_edge(Edge::weighted(src, dst, rng.gen_range(1.0..10.0)));
        added += 1;
    }
    if num_labels > 0 {
        for v in 0..num_vertices as VertexId {
            builder.push_vertex_label(v, rng.gen_range(1..=num_labels));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_and_no_self_loops() {
        let g = erdos_renyi(100, 500, 0, Directedness::Directed, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        assert!(g.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn undirected_variant_is_symmetric() {
        let g = erdos_renyi(50, 200, 0, Directedness::Undirected, 2);
        for v in g.vertices() {
            for n in g.out_neighbors(v) {
                assert!(g.out_neighbors(n.target).iter().any(|m| m.target == v));
            }
        }
    }

    #[test]
    fn labels_present_when_requested() {
        let g = erdos_renyi(40, 80, 6, Directedness::Directed, 3);
        assert!(g.vertices().all(|v| (1..=6).contains(&g.vertex_label(v))));
    }

    #[test]
    fn zero_edge_graph() {
        let g = erdos_renyi(10, 0, 0, Directedness::Directed, 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(60, 300, 2, Directedness::Directed, 5);
        let b = erdos_renyi(60, 300, 2, Directedness::Directed, 5);
        assert_eq!(a.edges(), b.edges());
    }
}
