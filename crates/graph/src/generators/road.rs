//! Road-network stand-in: a 2-D grid with positive random edge weights.
//!
//! The defining property of the paper's `traffic` dataset (23M nodes, 58M
//! edges, US road network) for the experiments is its *huge diameter* and
//! near-constant degree: vertex-centric systems need on the order of the
//! diameter supersteps (Giraph took 10 752 on traffic), whereas GRAPE only
//! needs about `diameter / fragment-width` supersteps (18 in the paper).  A
//! grid of `w × h` intersections reproduces exactly that regime with
//! `diameter = w + h - 2`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Directedness, Graph};
use crate::types::{Edge, VertexId};

/// Generates a `width × height` grid road network.
///
/// Every intersection is connected to its four neighbours with a pair of
/// directed edges (one per direction) whose weights are drawn uniformly from
/// `[1, 10)`, mimicking road segment lengths.
pub fn road_grid(width: usize, height: usize, seed: u64) -> Graph {
    assert!(width > 0 && height > 0, "grid dimensions must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| (y * width + x) as VertexId;
    let mut builder = GraphBuilder::new(Directedness::Directed)
        .ensure_vertices(width * height)
        .with_capacity(4 * width * height);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                let w = rng.gen_range(1.0..10.0);
                builder.push_edge(Edge::weighted(id(x, y), id(x + 1, y), w));
                builder.push_edge(Edge::weighted(id(x + 1, y), id(x, y), w));
            }
            if y + 1 < height {
                let w = rng.gen_range(1.0..10.0);
                builder.push_edge(Edge::weighted(id(x, y), id(x, y + 1), w));
                builder.push_edge(Edge::weighted(id(x, y + 1), id(x, y), w));
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_size() {
        let g = road_grid(10, 5, 1);
        assert_eq!(g.num_vertices(), 50);
        // Horizontal: 9*5 per direction, vertical: 10*4 per direction.
        assert_eq!(g.num_edges(), 2 * (9 * 5 + 10 * 4));
    }

    #[test]
    fn corner_and_interior_degrees() {
        let g = road_grid(4, 4, 2);
        assert_eq!(g.out_degree(0), 2); // corner
        assert_eq!(g.out_degree(5), 4); // interior (x=1,y=1)
    }

    #[test]
    fn weights_are_positive_and_symmetric_per_segment() {
        let g = road_grid(3, 3, 3);
        for e in g.edges() {
            assert!(e.weight >= 1.0 && e.weight < 10.0);
        }
        // Each segment appears in both directions with the same weight.
        for v in g.vertices() {
            for n in g.out_neighbors(v) {
                let back = g
                    .out_neighbors(n.target)
                    .iter()
                    .find(|m| m.target == v)
                    .expect("reverse edge exists");
                assert_eq!(back.weight, n.weight);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = road_grid(6, 6, 7);
        let b = road_grid(6, 6, 7);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn single_row_grid_is_a_path() {
        let g = road_grid(5, 1, 0);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 2);
    }
}
