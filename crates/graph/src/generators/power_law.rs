//! Power-law / social-network stand-in (R-MAT style), replacing `liveJournal`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Directedness, Graph};
use crate::types::{Edge, Label, VertexId};

/// R-MAT quadrant probabilities producing skewed (power-law-like) degree
/// distributions, as in the original R-MAT paper.
const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

/// Generates a directed power-law graph with `num_vertices` vertices,
/// `num_edges` edges, vertex labels drawn uniformly from `1..=num_labels`
/// (0 labels ⇒ unlabeled) and edge weights uniform in `[1, 10)`.
///
/// This is the stand-in for the paper's `liveJournal` social network
/// (4.8M nodes, 68M edges, 100 labels): a small-diameter graph with a heavy
/// degree tail, so traversal converges in tens of supersteps and pattern
/// queries find many candidate matches.
pub fn power_law(num_vertices: usize, num_edges: usize, num_labels: u32, seed: u64) -> Graph {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = (num_vertices as f64).log2().ceil().max(1.0) as u32;
    let side = 1u64 << scale;

    let mut builder = GraphBuilder::new(Directedness::Directed)
        .ensure_vertices(num_vertices)
        .with_capacity(num_edges);

    let mut generated = 0usize;
    let mut attempts = 0usize;
    let max_attempts = num_edges.saturating_mul(4).max(64);
    while generated < num_edges && attempts < max_attempts {
        attempts += 1;
        let (src, dst) = rmat_edge(&mut rng, side, scale);
        let src = (src % num_vertices as u64) as VertexId;
        let dst = (dst % num_vertices as u64) as VertexId;
        if src == dst {
            continue;
        }
        let weight = rng.gen_range(1.0..10.0);
        builder.push_edge(Edge::weighted(src, dst, weight));
        generated += 1;
    }
    // Top up with uniform random edges if R-MAT rejected too many self loops.
    while generated < num_edges {
        let src = rng.gen_range(0..num_vertices as u64);
        let dst = rng.gen_range(0..num_vertices as u64);
        if src == dst {
            continue;
        }
        builder.push_edge(Edge::weighted(src, dst, rng.gen_range(1.0..10.0)));
        generated += 1;
    }

    if num_labels > 0 {
        for v in 0..num_vertices as VertexId {
            let label: Label = rng.gen_range(1..=num_labels);
            builder.push_vertex_label(v, label);
        }
    }
    builder.build()
}

/// Draws one R-MAT edge by recursively descending `scale` levels of the
/// adjacency matrix.
fn rmat_edge(rng: &mut StdRng, side: u64, scale: u32) -> (u64, u64) {
    let mut x_low = 0u64;
    let mut y_low = 0u64;
    let mut len = side;
    for _ in 0..scale {
        len /= 2;
        let r: f64 = rng.gen();
        // Perturb probabilities slightly per level to avoid exact self-similarity.
        let noise = (rng.gen::<f64>() - 0.5) * 0.1;
        let a = (A + noise).clamp(0.05, 0.9);
        if r < a {
            // top-left quadrant
        } else if r < a + B {
            y_low += len;
        } else if r < a + B + C {
            x_low += len;
        } else {
            x_low += len;
            y_low += len;
        }
        if len == 0 {
            break;
        }
    }
    (x_low, y_low)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_requested_size() {
        let g = power_law(1000, 5000, 10, 42);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), 5000);
    }

    #[test]
    fn labels_in_range_when_requested() {
        let g = power_law(200, 600, 5, 1);
        for v in g.vertices() {
            let l = g.vertex_label(v);
            assert!((1..=5).contains(&l), "label {l} out of range");
        }
    }

    #[test]
    fn unlabeled_when_zero_labels() {
        let g = power_law(100, 200, 0, 1);
        assert!(g.vertices().all(|v| g.vertex_label(v) == 0));
    }

    #[test]
    fn no_self_loops() {
        let g = power_law(500, 2000, 3, 9);
        assert!(g.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = power_law(2000, 16000, 0, 7);
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_1_percent: usize = degrees.iter().take(degrees.len() / 100).sum();
        let total: usize = degrees.iter().sum();
        // The hubs of an R-MAT graph own far more than their uniform share.
        assert!(
            top_1_percent as f64 > 0.03 * total as f64,
            "expected skew, top 1% owns {top_1_percent}/{total}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = power_law(300, 900, 4, 5);
        let b = power_law(300, 900, 4, 5);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.vertex_labels(), b.vertex_labels());
    }
}
