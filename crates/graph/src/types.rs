//! Fundamental identifier and attribute types shared across the workspace.
//!
//! Vertices are identified by dense integers in `0..n`, which keeps fragment
//! state (status variables, `dist(s, v)`, component ids, …) addressable by
//! plain `Vec` indexing and makes message keys cheap to hash and ship.

use serde::{Deserialize, Serialize};

/// Global identifier of a vertex.  Dense: a graph with `n` vertices uses ids
/// `0..n`.
pub type VertexId = u64;

/// Identifier of an edge, i.e. its position in the graph's edge list.
pub type EdgeId = u64;

/// Label attached to a vertex or an edge (paper: `L(v)`, `L(e)`).
///
/// Labels are small integers drawn from a finite alphabet; the generators
/// control the alphabet size (e.g. 100 labels for the liveJournal stand-in,
/// 200 node / 160 edge types for the DBpedia stand-in).
pub type Label = u32;

/// Edge weight (paper: the positive edge length used by SSSP, or a rating
/// used by collaborative filtering).
pub type Weight = f64;

/// The label used when a graph carries no label information.
pub const NO_LABEL: Label = 0;

/// The default weight used when a graph carries no weight information.
pub const UNIT_WEIGHT: Weight = 1.0;

/// A single edge record, used by builders, readers and generators before the
/// graph is frozen into CSR form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (`1.0` when unweighted).
    pub weight: Weight,
    /// Edge label (`0` when unlabeled).
    pub label: Label,
}

impl Edge {
    /// An unlabeled, unit-weight edge.
    pub fn unweighted(src: VertexId, dst: VertexId) -> Self {
        Edge {
            src,
            dst,
            weight: UNIT_WEIGHT,
            label: NO_LABEL,
        }
    }

    /// An unlabeled, weighted edge.
    pub fn weighted(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Edge {
            src,
            dst,
            weight,
            label: NO_LABEL,
        }
    }

    /// A fully specified edge.
    pub fn new(src: VertexId, dst: VertexId, weight: Weight, label: Label) -> Self {
        Edge {
            src,
            dst,
            weight,
            label,
        }
    }

    /// The same edge with source and destination swapped (used to materialise
    /// the reverse adjacency and undirected graphs).
    pub fn reversed(&self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
            label: self.label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors() {
        let e = Edge::unweighted(1, 2);
        assert_eq!(e.src, 1);
        assert_eq!(e.dst, 2);
        assert_eq!(e.weight, UNIT_WEIGHT);
        assert_eq!(e.label, NO_LABEL);

        let w = Edge::weighted(3, 4, 2.5);
        assert_eq!(w.weight, 2.5);

        let f = Edge::new(5, 6, 1.5, 7);
        assert_eq!(f.label, 7);
    }

    #[test]
    fn edge_reversed_swaps_endpoints_and_keeps_attributes() {
        let e = Edge::new(1, 2, 3.0, 4);
        let r = e.reversed();
        assert_eq!(r.src, 2);
        assert_eq!(r.dst, 1);
        assert_eq!(r.weight, 3.0);
        assert_eq!(r.label, 4);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn edge_serde_roundtrip() {
        let e = Edge::new(10, 20, 0.5, 3);
        let json = serde_json::to_string(&e).unwrap();
        let back: Edge = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
