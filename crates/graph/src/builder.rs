//! Incremental construction of [`Graph`] values.

use crate::graph::{Directedness, Graph};
use crate::types::{Edge, Label, VertexId, Weight, NO_LABEL};

/// Builder for [`Graph`].
///
/// Vertices are implicitly created by referencing them in edges or by
/// [`GraphBuilder::ensure_vertices`]; the final vertex count is
/// `max(referenced id) + 1`, so ids should be dense for memory efficiency.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    directedness: Option<Directedness>,
    edges: Vec<Edge>,
    vertex_labels: Vec<(VertexId, Label)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with the given directedness.
    pub fn new(directedness: Directedness) -> Self {
        GraphBuilder {
            directedness: Some(directedness),
            edges: Vec::new(),
            vertex_labels: Vec::new(),
            min_vertices: 0,
        }
    }

    /// Creates a builder for a directed graph (the common case in the paper).
    pub fn directed() -> Self {
        Self::new(Directedness::Directed)
    }

    /// Creates a builder for an undirected graph (used by CC).
    pub fn undirected() -> Self {
        Self::new(Directedness::Undirected)
    }

    /// Pre-reserves capacity for `edges` edge records.
    pub fn with_capacity(mut self, edges: usize) -> Self {
        self.edges.reserve(edges);
        self
    }

    /// Guarantees the graph has at least `n` vertices, even if some are
    /// isolated.
    pub fn ensure_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds an unlabeled, unit-weight edge.
    pub fn add_edge(mut self, src: VertexId, dst: VertexId) -> Self {
        self.edges.push(Edge::unweighted(src, dst));
        self
    }

    /// Adds an unlabeled, weighted edge.
    pub fn add_weighted_edge(mut self, src: VertexId, dst: VertexId, weight: Weight) -> Self {
        self.edges.push(Edge::weighted(src, dst, weight));
        self
    }

    /// Adds a fully specified edge.
    pub fn add_labeled_edge(
        mut self,
        src: VertexId,
        dst: VertexId,
        weight: Weight,
        label: Label,
    ) -> Self {
        self.edges.push(Edge::new(src, dst, weight, label));
        self
    }

    /// Adds a pre-built edge record.
    pub fn add_edge_record(mut self, edge: Edge) -> Self {
        self.edges.push(edge);
        self
    }

    /// Bulk-adds edge records.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(mut self, edges: I) -> Self {
        self.edges.extend(edges);
        self
    }

    /// Sets the label of a vertex (overriding any previous label).
    pub fn set_vertex_label(mut self, v: VertexId, label: Label) -> Self {
        self.vertex_labels.push((v, label));
        self
    }

    /// In-place (non-consuming) variants, convenient inside loops.
    pub fn push_edge(&mut self, edge: Edge) {
        self.edges.push(edge);
    }

    /// In-place vertex label assignment.
    pub fn push_vertex_label(&mut self, v: VertexId, label: Label) {
        self.vertex_labels.push((v, label));
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let directedness = self.directedness.unwrap_or(Directedness::Directed);
        let mut n = self.min_vertices;
        for e in &self.edges {
            n = n.max(e.src as usize + 1).max(e.dst as usize + 1);
        }
        for (v, _) in &self.vertex_labels {
            n = n.max(*v as usize + 1);
        }
        let mut labels = vec![NO_LABEL; n];
        for (v, l) in &self.vertex_labels {
            labels[*v as usize] = *l;
        }
        Graph::from_parts(directedness, n, self.edges, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_max_id_plus_one() {
        let g = GraphBuilder::directed().add_edge(0, 7).build();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn ensure_vertices_creates_isolated_vertices() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .ensure_vertices(5)
            .build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn labels_are_applied_and_extend_vertex_count() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .set_vertex_label(3, 9)
            .set_vertex_label(0, 2)
            .build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.vertex_label(0), 2);
        assert_eq!(g.vertex_label(3), 9);
        assert_eq!(g.vertex_label(1), NO_LABEL);
    }

    #[test]
    fn later_label_overrides_earlier() {
        let g = GraphBuilder::directed()
            .set_vertex_label(0, 1)
            .set_vertex_label(0, 5)
            .build();
        assert_eq!(g.vertex_label(0), 5);
    }

    #[test]
    fn push_edge_and_extend_edges_accumulate() {
        let mut b = GraphBuilder::undirected();
        b.push_edge(Edge::unweighted(0, 1));
        let g = b
            .extend_edges(vec![Edge::unweighted(1, 2), Edge::unweighted(2, 3)])
            .build();
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_directed());
    }

    #[test]
    fn empty_builder_produces_empty_graph() {
        let g = GraphBuilder::directed().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.check_invariants());
    }
}
