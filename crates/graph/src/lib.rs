//! # grape-graph
//!
//! Graph storage and synthetic workload generators for the GRAPE (SIGMOD
//! 2017) reproduction.
//!
//! The crate provides:
//!
//! * [`graph::Graph`] — an immutable, CSR-backed, labeled and weighted graph
//!   (directed or undirected) with forward and reverse adjacency,
//! * [`builder::GraphBuilder`] — an incremental builder producing [`graph::Graph`],
//! * [`pattern::Pattern`] — small labeled pattern graphs used by graph-pattern
//!   matching (Sim / SubIso),
//! * [`generators`] — synthetic stand-ins for the paper's datasets
//!   (road grid ≙ *traffic*, power-law ≙ *liveJournal*, labeled knowledge graph
//!   ≙ *DBpedia*, bipartite ratings ≙ *movieLens*),
//! * [`delta`] — batched graph updates ([`delta::GraphDelta`]) and
//!   [`graph::Graph::apply_delta`], the `ΔG` of queries under updates,
//! * [`io`] — plain-text edge-list readers/writers, binary graph snapshots
//!   and serde support.
//!
//! All vertex identifiers are dense `0..n` integers ([`types::VertexId`]);
//! this is what lets fragments and the fragmentation graph index status
//! variables with plain vectors.

pub mod builder;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod graph;
pub mod io;
pub mod pattern;
pub mod types;

pub use builder::GraphBuilder;
pub use delta::GraphDelta;
pub use graph::{Directedness, Graph};
pub use pattern::Pattern;
pub use types::{EdgeId, Label, VertexId, Weight};
