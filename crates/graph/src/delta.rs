//! Batched graph updates `ΔG` (the *evolving graph* setting of Section 3.4).
//!
//! The paper's signature observation is that the `IncEval` function that
//! drives supersteps also answers queries **under updates**: once `Q(G)` is
//! known, `Q(G ⊕ ΔG)` can be computed by re-running `IncEval` from the
//! retained partial results instead of `PEval` from scratch.  A
//! [`GraphDelta`] is the unit `ΔG` of that protocol: a batch of vertex and
//! edge insertions and deletions, applied atomically.
//!
//! Semantics (designed so that global vertex ids stay **stable** — fragment
//! state is addressed by global id, and renumbering would invalidate every
//! retained partial result):
//!
//! * **Edge insertion** may reference brand-new vertex ids; the vertex set is
//!   extended to cover them (like [`crate::builder::GraphBuilder`]).
//! * **Edge deletion** removes *every* parallel edge matching `(src, dst)`
//!   (and, for undirected graphs, the mirrored pair).
//! * **Vertex insertion** adds an isolated vertex with a label.
//! * **Vertex deletion** *detaches* the vertex: all incident edges are
//!   removed, but the id remains valid (an isolated vertex).  Ids are never
//!   reused.
//!
//! Deletions are flagged by [`GraphDelta::has_removals`] because they decide
//! whether a PIE program can take the monotone IncEval-only update path (see
//! `grape_core::pie::IncrementalPie`).

use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::types::{Edge, Label, VertexId, Weight, NO_LABEL, UNIT_WEIGHT};

/// Errors produced by [`Graph::apply_delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge deletion referenced an edge that is not in the graph.
    MissingEdge {
        /// Source of the missing edge.
        src: VertexId,
        /// Destination of the missing edge.
        dst: VertexId,
    },
    /// A vertex deletion referenced a vertex id outside the graph.
    MissingVertex(VertexId),
    /// A vertex insertion re-used an id that already exists.
    VertexExists(VertexId),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::MissingEdge { src, dst } => {
                write!(f, "cannot remove edge {src} -> {dst}: not in the graph")
            }
            DeltaError::MissingVertex(v) => {
                write!(f, "cannot remove vertex {v}: not in the graph")
            }
            DeltaError::VertexExists(v) => {
                write!(f, "cannot add vertex {v}: id already exists")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A batch of graph updates `ΔG`: vertex/edge insertions and deletions.
///
/// Built fluently:
///
/// ```
/// use grape_graph::delta::GraphDelta;
///
/// let delta = GraphDelta::new()
///     .add_weighted_edge(0, 7, 2.5)
///     .add_vertex(9, 3)
///     .remove_edge(1, 2);
/// assert!(delta.has_insertions() && delta.has_removals());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    added_vertices: Vec<(VertexId, Label)>,
    added_edges: Vec<Edge>,
    removed_edges: Vec<(VertexId, VertexId)>,
    removed_vertices: Vec<VertexId>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Adds an isolated vertex with a label ([`NO_LABEL`] for unlabeled).
    pub fn add_vertex(mut self, v: VertexId, label: Label) -> Self {
        self.added_vertices.push((v, label));
        self
    }

    /// Inserts an unweighted edge (weight [`UNIT_WEIGHT`]).
    pub fn add_edge(self, src: VertexId, dst: VertexId) -> Self {
        self.add_edge_record(Edge::new(src, dst, UNIT_WEIGHT, NO_LABEL))
    }

    /// Inserts a weighted edge.
    pub fn add_weighted_edge(self, src: VertexId, dst: VertexId, weight: Weight) -> Self {
        self.add_edge_record(Edge::new(src, dst, weight, NO_LABEL))
    }

    /// Inserts a full edge record.
    pub fn add_edge_record(mut self, edge: Edge) -> Self {
        self.added_edges.push(edge);
        self
    }

    /// Removes every edge matching `(src, dst)` (and the mirrored pair on
    /// undirected graphs).
    pub fn remove_edge(mut self, src: VertexId, dst: VertexId) -> Self {
        self.removed_edges.push((src, dst));
        self
    }

    /// Detaches vertex `v`: removes all incident edges, keeps the id valid.
    pub fn remove_vertex(mut self, v: VertexId) -> Self {
        self.removed_vertices.push(v);
        self
    }

    /// The vertex insertions `(id, label)`.
    pub fn added_vertices(&self) -> &[(VertexId, Label)] {
        &self.added_vertices
    }

    /// The edge insertions.
    pub fn added_edges(&self) -> &[Edge] {
        &self.added_edges
    }

    /// The edge deletions `(src, dst)`.
    pub fn removed_edges(&self) -> &[(VertexId, VertexId)] {
        &self.removed_edges
    }

    /// The vertex deletions.
    pub fn removed_vertices(&self) -> &[VertexId] {
        &self.removed_vertices
    }

    /// Whether the delta contains no updates at all.
    pub fn is_empty(&self) -> bool {
        self.added_vertices.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_vertices.is_empty()
    }

    /// Whether the delta inserts any vertex or edge.
    pub fn has_insertions(&self) -> bool {
        !self.added_vertices.is_empty() || !self.added_edges.is_empty()
    }

    /// Whether the delta removes any vertex or edge.  Deletions are what
    /// usually breaks the monotone IncEval-only update path (SSSP distances
    /// can grow back, components can split) — graph simulation is the notable
    /// exception, where deletions are the monotone direction.
    pub fn has_removals(&self) -> bool {
        !self.removed_edges.is_empty() || !self.removed_vertices.is_empty()
    }

    /// Total number of updates in the batch.
    pub fn len(&self) -> usize {
        self.added_vertices.len()
            + self.added_edges.len()
            + self.removed_edges.len()
            + self.removed_vertices.len()
    }

    /// Whether the delta consists **exclusively** of edge insertions (no
    /// vertex insertions, no removals of any kind).  The empty delta
    /// qualifies.
    ///
    /// This is the group-commit merge-safety predicate: appending an
    /// edge-insert-only delta to an earlier delta and applying the merged
    /// batch once is equivalent to applying the two sequentially.  Any other
    /// shape can diverge, because removals and vertex insertions are
    /// *validated against the pre-batch graph* — e.g. `d₁ = add(a,b)`,
    /// `d₂ = remove(a,b)` applies sequentially but the merged batch rejects
    /// the removal (the edge is not in the pre-batch graph), and
    /// `d₂ = add_vertex(v)` after `d₁` implicitly created `v` errors
    /// sequentially but not merged.
    pub fn is_edge_insert_only(&self) -> bool {
        self.added_vertices.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_vertices.is_empty()
    }

    /// Appends every update of `other` after this delta's updates, in order.
    ///
    /// Plain concatenation: `merged.added_edges()` is `self`'s insertions
    /// followed by `other`'s, and likewise for the other three update kinds.
    /// Applying the merged delta is equivalent to applying `self` then
    /// `other` **only when `other.is_edge_insert_only()`** — see that
    /// predicate for the counter-examples.  Callers doing group-commit must
    /// check it before merging.
    pub fn merge(mut self, other: &GraphDelta) -> Self {
        self.added_vertices.extend_from_slice(&other.added_vertices);
        self.added_edges.extend_from_slice(&other.added_edges);
        self.removed_edges.extend_from_slice(&other.removed_edges);
        self.removed_vertices
            .extend_from_slice(&other.removed_vertices);
        self
    }
}

impl Graph {
    /// Applies a batch of updates, producing `G ⊕ ΔG`.
    ///
    /// The graph is immutable (CSR-frozen), so this rebuilds the edge list
    /// and re-indexes — `O(|V| + |E| + |ΔG|)`.  The point of the prepared
    /// query machinery is that the *computation* over the updated graph is
    /// incremental; rebuilding the structure itself is a linear scan.
    ///
    /// See the module docs for the exact semantics of each update kind.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Graph, DeltaError> {
        use std::collections::HashSet;

        // Hash the removal sets once so the filter below stays O(|E| + |ΔG|)
        // (undirected graphs match either orientation, so both are stored).
        let gone_vertices: HashSet<VertexId> = delta.removed_vertices().iter().copied().collect();
        let mut gone_edges: HashSet<(VertexId, VertexId)> = HashSet::new();
        for &(src, dst) in delta.removed_edges() {
            gone_edges.insert((src, dst));
            if !self.is_directed() {
                gone_edges.insert((dst, src));
            }
        }

        // Validate removals against the current graph.
        for &v in delta.removed_vertices() {
            if !self.contains_vertex(v) {
                return Err(DeltaError::MissingVertex(v));
            }
        }
        let present: HashSet<(VertexId, VertexId)> = self
            .edges()
            .iter()
            .map(|e| (e.src, e.dst))
            .filter(|pair| gone_edges.contains(pair))
            .collect();
        for &(src, dst) in delta.removed_edges() {
            let found = present.contains(&(src, dst))
                || (!self.is_directed() && present.contains(&(dst, src)));
            if !found {
                return Err(DeltaError::MissingEdge { src, dst });
            }
        }
        for &(v, _) in delta.added_vertices() {
            if self.contains_vertex(v) {
                return Err(DeltaError::VertexExists(v));
            }
        }

        // New vertex count: ids stay dense and stable.
        let mut n = self.num_vertices();
        for &(v, _) in delta.added_vertices() {
            n = n.max(v as usize + 1);
        }
        for e in delta.added_edges() {
            n = n.max(e.src as usize + 1).max(e.dst as usize + 1);
        }

        let mut edges: Vec<Edge> = self
            .edges()
            .iter()
            .filter(|e| {
                !gone_vertices.contains(&e.src)
                    && !gone_vertices.contains(&e.dst)
                    && !gone_edges.contains(&(e.src, e.dst))
            })
            .copied()
            .collect();
        edges.extend(delta.added_edges().iter().copied());

        let mut labels: Vec<Label> = self.vertex_labels().to_vec();
        labels.resize(n, NO_LABEL);
        for &(v, label) in delta.added_vertices() {
            labels[v as usize] = label;
        }

        Ok(Graph::from_parts(self.directedness(), n, edges, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        GraphBuilder::directed()
            .add_weighted_edge(0, 1, 1.0)
            .add_weighted_edge(0, 2, 2.0)
            .add_weighted_edge(1, 3, 3.0)
            .add_weighted_edge(2, 3, 4.0)
            .build()
    }

    #[test]
    fn edge_insertion_extends_the_vertex_set() {
        let g = diamond();
        let updated = g
            .apply_delta(&GraphDelta::new().add_weighted_edge(3, 5, 1.5))
            .unwrap();
        assert_eq!(updated.num_vertices(), 6);
        assert_eq!(updated.num_edges(), 5);
        assert_eq!(updated.out_neighbors(3)[0].target, 5);
        assert!(updated.check_invariants());
    }

    #[test]
    fn edge_removal_drops_all_parallel_copies() {
        let g = GraphBuilder::directed()
            .add_edge(0, 1)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build();
        let updated = g.apply_delta(&GraphDelta::new().remove_edge(0, 1)).unwrap();
        assert_eq!(updated.num_edges(), 1);
        assert_eq!(updated.out_degree(0), 0);
    }

    #[test]
    fn undirected_edge_removal_matches_either_orientation() {
        let g = GraphBuilder::undirected().add_edge(0, 1).build();
        let updated = g.apply_delta(&GraphDelta::new().remove_edge(1, 0)).unwrap();
        assert_eq!(updated.num_edges(), 0);
    }

    #[test]
    fn vertex_removal_detaches_but_keeps_the_id() {
        let g = diamond();
        let updated = g.apply_delta(&GraphDelta::new().remove_vertex(1)).unwrap();
        assert_eq!(updated.num_vertices(), 4, "ids stay stable");
        assert_eq!(updated.num_edges(), 2, "both incident edges removed");
        assert_eq!(updated.out_degree(1), 0);
        assert_eq!(updated.in_degree(1), 0);
    }

    #[test]
    fn vertex_insertion_carries_its_label() {
        let g = diamond();
        let updated = g.apply_delta(&GraphDelta::new().add_vertex(7, 42)).unwrap();
        assert_eq!(updated.num_vertices(), 8);
        assert_eq!(updated.vertex_label(7), 42);
        assert_eq!(updated.vertex_label(5), NO_LABEL);
    }

    #[test]
    fn removing_a_missing_edge_is_an_error() {
        let g = diamond();
        assert_eq!(
            g.apply_delta(&GraphDelta::new().remove_edge(3, 0))
                .unwrap_err(),
            DeltaError::MissingEdge { src: 3, dst: 0 }
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::new().remove_vertex(9))
                .unwrap_err(),
            DeltaError::MissingVertex(9)
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::new().add_vertex(0, 1))
                .unwrap_err(),
            DeltaError::VertexExists(0)
        );
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = diamond();
        let updated = g.apply_delta(&GraphDelta::new()).unwrap();
        assert_eq!(updated.num_vertices(), g.num_vertices());
        assert_eq!(updated.num_edges(), g.num_edges());
        assert!(GraphDelta::new().is_empty());
    }

    #[test]
    fn classification_flags() {
        assert!(GraphDelta::new().add_edge(0, 1).has_insertions());
        assert!(!GraphDelta::new().add_edge(0, 1).has_removals());
        assert!(GraphDelta::new().remove_edge(0, 1).has_removals());
        assert!(GraphDelta::new().remove_vertex(2).has_removals());
        assert_eq!(GraphDelta::new().add_edge(0, 1).remove_vertex(2).len(), 2);
    }

    #[test]
    fn merge_concatenates_in_order() {
        let merged = GraphDelta::new()
            .add_weighted_edge(0, 1, 1.0)
            .remove_edge(2, 3)
            .merge(&GraphDelta::new().add_weighted_edge(1, 2, 2.0));
        assert_eq!(merged.added_edges().len(), 2);
        assert_eq!(merged.added_edges()[0].dst, 1, "self's edges come first");
        assert_eq!(merged.added_edges()[1].dst, 2);
        assert_eq!(merged.removed_edges(), &[(2, 3)]);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn edge_insert_only_predicate() {
        assert!(GraphDelta::new().is_edge_insert_only(), "empty qualifies");
        assert!(GraphDelta::new().add_edge(0, 1).is_edge_insert_only());
        assert!(!GraphDelta::new().add_vertex(9, 0).is_edge_insert_only());
        assert!(!GraphDelta::new().remove_edge(0, 1).is_edge_insert_only());
        assert!(!GraphDelta::new().remove_vertex(1).is_edge_insert_only());
    }

    /// The merge-safety rule in action: merging an edge-insert-only suffix is
    /// equivalent to sequential application, while merging a removal is not.
    #[test]
    fn merged_insert_only_suffix_equals_sequential_application() {
        let g = diamond();
        let d1 = GraphDelta::new()
            .remove_edge(0, 1)
            .add_weighted_edge(1, 4, 1.0);
        let d2 = GraphDelta::new().add_weighted_edge(4, 5, 2.0);
        let sequential = g.apply_delta(&d1).unwrap().apply_delta(&d2).unwrap();
        let merged = g.apply_delta(&d1.clone().merge(&d2)).unwrap();
        assert_eq!(sequential.num_vertices(), merged.num_vertices());
        assert_eq!(sequential.num_edges(), merged.num_edges());

        // Counter-example: d2 removes the edge d1 just added.  Sequential
        // succeeds; the merged batch rejects the removal (not in the
        // pre-batch graph).
        let d2_removal = GraphDelta::new().remove_edge(1, 4);
        assert!(g.apply_delta(&d1).unwrap().apply_delta(&d2_removal).is_ok());
        assert_eq!(
            g.apply_delta(&d1.merge(&d2_removal)).unwrap_err(),
            DeltaError::MissingEdge { src: 1, dst: 4 }
        );
    }

    #[test]
    fn serde_roundtrip() {
        let delta = GraphDelta::new()
            .add_weighted_edge(1, 2, 3.5)
            .add_vertex(9, 4)
            .remove_edge(0, 1)
            .remove_vertex(5);
        let json = serde_json::to_string(&delta).unwrap();
        let back: GraphDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back.added_edges().len(), 1);
        assert_eq!(back.added_vertices(), &[(9, 4)]);
        assert_eq!(back.removed_edges(), &[(0, 1)]);
        assert_eq!(back.removed_vertices(), &[5]);
    }
}
