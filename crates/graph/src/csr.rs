//! Compressed sparse row (CSR) adjacency.
//!
//! The [`Csr`] structure stores, for every vertex, a contiguous slice of its
//! outgoing (or incoming, when used as a reverse index) edges.  It is the
//! storage backbone of [`crate::graph::Graph`] and of the per-fragment local
//! graphs built by `grape-partition`.

use serde::{Deserialize, Serialize};

use crate::types::{Edge, Label, VertexId, Weight};

/// A single adjacency entry: the endpoint of an edge together with its
/// attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The other endpoint of the edge.
    pub target: VertexId,
    /// Edge weight.
    pub weight: Weight,
    /// Edge label.
    pub label: Label,
}

/// Compressed sparse row adjacency over dense vertex ids `0..n`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// `offsets[v]..offsets[v + 1]` is the range of `neighbors` owned by `v`.
    offsets: Vec<usize>,
    /// Flattened adjacency lists.
    neighbors: Vec<Neighbor>,
}

impl Csr {
    /// Builds a CSR index over `num_vertices` vertices from an edge list,
    /// using `src` as the owning endpoint.
    ///
    /// Edges are grouped per source with a counting sort, so construction is
    /// `O(|V| + |E|)`.  Within a vertex, neighbors keep the insertion order of
    /// the edge list.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let mut counts = vec![0usize; num_vertices + 1];
        for e in edges {
            debug_assert!(
                (e.src as usize) < num_vertices,
                "edge source {} out of bounds (n = {})",
                e.src,
                num_vertices
            );
            counts[e.src as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut neighbors = vec![
            Neighbor {
                target: 0,
                weight: 0.0,
                label: 0
            };
            edges.len()
        ];
        for e in edges {
            let slot = cursor[e.src as usize];
            neighbors[slot] = Neighbor {
                target: e.dst,
                weight: e.weight,
                label: e.label,
            };
            cursor[e.src as usize] += 1;
        }
        Csr { offsets, neighbors }
    }

    /// Number of vertices indexed.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of adjacency entries.
    pub fn num_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// The adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[Neighbor] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v` in this index.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterates over `(source, neighbor)` pairs for all vertices.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &Neighbor)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |n| (v, n)))
    }

    /// Checks structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        if self.offsets.is_empty() {
            return self.neighbors.is_empty();
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.neighbors.len() {
            return false;
        }
        self.offsets.windows(2).all(|w| w[0] <= w[1])
            && self.neighbors.iter().all(|n| {
                (n.target as usize) < self.num_vertices().max(1) || self.num_vertices() == 0
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        vec![
            Edge::new(0, 1, 1.0, 0),
            Edge::new(0, 2, 2.0, 1),
            Edge::new(2, 0, 3.0, 0),
            Edge::new(1, 2, 4.0, 2),
            Edge::new(0, 3, 5.0, 0),
        ]
    }

    #[test]
    fn builds_grouped_adjacency() {
        let csr = Csr::from_edges(4, &edges());
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_entries(), 5);
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.degree(2), 1);
        assert_eq!(csr.degree(3), 0);

        let targets: Vec<VertexId> = csr.neighbors(0).iter().map(|n| n.target).collect();
        assert_eq!(targets, vec![1, 2, 3]);
        assert_eq!(csr.neighbors(1)[0].weight, 4.0);
        assert_eq!(csr.neighbors(1)[0].label, 2);
    }

    #[test]
    fn preserves_insertion_order_within_vertex() {
        let edges = vec![
            Edge::unweighted(0, 3),
            Edge::unweighted(0, 1),
            Edge::unweighted(0, 2),
        ];
        let csr = Csr::from_edges(4, &edges);
        let targets: Vec<VertexId> = csr.neighbors(0).iter().map(|n| n.target).collect();
        assert_eq!(targets, vec![3, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_entries(), 0);
        assert!(csr.check_invariants());
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let csr = Csr::from_edges(5, &[Edge::unweighted(1, 2)]);
        assert_eq!(csr.degree(0), 0);
        assert_eq!(csr.degree(3), 0);
        assert_eq!(csr.degree(4), 0);
        assert_eq!(csr.degree(1), 1);
    }

    #[test]
    fn iter_visits_every_edge_once() {
        let csr = Csr::from_edges(4, &edges());
        let collected: Vec<(VertexId, VertexId)> = csr.iter().map(|(s, n)| (s, n.target)).collect();
        assert_eq!(collected.len(), 5);
        assert!(collected.contains(&(0, 1)));
        assert!(collected.contains(&(2, 0)));
    }

    #[test]
    fn invariants_hold_for_random_like_input() {
        let csr = Csr::from_edges(4, &edges());
        assert!(csr.check_invariants());
    }
}
