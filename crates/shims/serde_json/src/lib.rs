//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: renders the shim `serde` crate's `Value` trees to JSON text and
//! parses JSON text back.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null).  Output is compact (no whitespace), object keys
//! keep the order the serializer produced (struct field order; sorted for
//! hash maps), and floats are rendered with Rust's shortest-roundtrip
//! formatting — the same conventions real serde_json uses for the types in
//! this workspace.

use serde::{Deserialize, Serialize, Value};

/// Errors from [`to_string`] / [`from_str`]; re-exported from the shim
/// `serde` crate, which both serialization directions share.
pub type Error = serde::Error;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form ("1.0",
                // "0.5"), which the parser below reads back exactly.
                out.push_str(&format!("{f:?}"));
            } else {
                // Real serde_json also degrades non-finite floats to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of JSON input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("invalid literal"))
                }
            }
            Some(_) => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the outer
                            // increment below.
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path — without it every character would pay
                    // a UTF-8 validation of the rest of the input, which is
                    // quadratic on the megabyte frames the worker pipes ship.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: validate just this scalar (≤ 4 bytes).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated prefix")
                        }
                        Err(_) => return Err(Error::custom("invalid UTF-8 in string")),
                    };
                    let c = valid.chars().next().expect("non-empty by valid_up_to");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-2i64).unwrap(), "-2");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);

        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<i64>("-2").unwrap(), -2);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1.0").unwrap(), 1.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u32, u32)>>(&json).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert(5u64, vec![1u32, 2]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"5":[1,2]}"#);
        let back: std::collections::HashMap<u64, Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn whitespace_and_unicode() {
        let v: Vec<String> = from_str(" [ \"caf\\u00e9\" , \"\\ud83d\\ude00\" ] ").unwrap();
        assert_eq!(v, vec!["café".to_string(), "😀".to_string()]);
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("3x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn option_null() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }
}
