//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace ships a minimal, dependency-free implementation
//! of exactly the `rand 0.8` API surface it uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`],
//! * [`seq::SliceRandom::choose`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, statistically solid for synthetic workload generation, and *not*
//! cryptographically secure (neither is the real `StdRng` contractually).
//! Streams differ from the real `rand` crate, so regenerated workloads are
//! deterministic per seed but not bit-identical with upstream `rand`.

/// Core random-number-generator trait: a source of `u64` values plus the
/// derived convenience methods used by the workspace.
pub trait Rng {
    /// Returns the next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty, as the real `rand` does.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self.next_u64()) < p
    }
}

/// Uniform `u64` in `[0, max]` (inclusive, so the full domain is reachable)
/// via a 128-bit multiply-shift; bias is negligible for the small ranges used
/// by workload generation.
fn bounded(raw: u64, max: u64) -> u64 {
    if max == u64::MAX {
        return raw;
    }
    ((raw as u128 * (max as u128 + 1)) >> 64) as u64
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Maps one raw `u64` draw onto the standard distribution of `Self`.
    fn sample(raw: u64) -> Self;
}

impl Standard for f64 {
    fn sample(raw: u64) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(raw: u64) -> f32 {
        (raw >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(raw: u64) -> u64 {
        raw
    }
}

impl Standard for u32 {
    fn sample(raw: u64) -> u32 {
        (raw >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(raw: u64) -> bool {
        raw & 1 == 1
    }
}

/// Types with a uniform sampler over `[low, high)` / `[low, high]`.
///
/// Mirrors `rand::distributions::uniform::SampleUniform` closely enough that
/// the blanket [`SampleRange`] impls below tie a range's element type to the
/// sampled type — which is what lets plain literals like
/// `rng.gen_range(-0.25..0.25)` infer `f64`.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_between(
        low: Self,
        high: Self,
        inclusive: bool,
        draw: &mut dyn FnMut() -> u64,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(
                low: $t,
                high: $t,
                inclusive: bool,
                draw: &mut dyn FnMut() -> u64,
            ) -> $t {
                // Offset through the unsigned domain so signed spans can't
                // overflow.
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                let span = if inclusive { span } else { span - 1 };
                low.wrapping_add(bounded(draw(), span) as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(
                low: $t,
                high: $t,
                inclusive: bool,
                draw: &mut dyn FnMut() -> u64,
            ) -> $t {
                let r = low + (f64::sample(draw()) as $t) * (high - low);
                // `low + s*(high-low)` can round up to `high` even though
                // `s < 1`; keep the exclusive contract of `low..high`.
                if !inclusive && r >= high {
                    high.next_down().max(low)
                } else {
                    r
                }
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Ranges samplable via [`Rng::gen_range`]; `draw` produces raw `u64`s.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, draw)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, draw: &mut dyn FnMut() -> u64) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(start, end, true, draw)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (`choose`, `shuffle`).

    use super::Rng;

    /// Extension trait over slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let n: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean far from 0.5");
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [10, 20, 30];
        assert!(items.contains(items.as_slice().choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());

        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn float_range_never_returns_the_exclusive_upper_bound() {
        // A maximal draw makes `low + s*(high-low)` round up to `high`;
        // the sampler must stay inside the half-open range anyway.
        let mut max_draw = || u64::MAX;
        let r = <f64 as super::SampleUniform>::sample_between(1.0, 10.0, false, &mut max_draw);
        assert!((1.0..10.0).contains(&r), "exclusive range returned {r}");
        let ri = <f64 as super::SampleUniform>::sample_between(1.0, 10.0, true, &mut max_draw);
        assert!((1.0..=10.0).contains(&ri));
    }

    #[test]
    fn gen_bool_probability_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
