//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! shim `serde` crate's `Value` model, without `syn`/`quote` (which are not
//! available offline).  Supported input shapes — which cover every derive in
//! this workspace:
//!
//! * structs with named fields, honoring `#[serde(skip)]` (never serialized,
//!   deserialized via `Default`) and `#[serde(default)]` (deserialized via
//!   `Default` when the field is absent),
//! * enums whose variants all carry no data (serialized as the variant name).
//!
//! Generics, tuple structs and data-carrying enum variants are rejected with
//! a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field, as needed for code generation.
struct Field {
    /// The field identifier as written (including a `r#` prefix if raw).
    ident: String,
    /// The map key: the identifier with any `r#` prefix stripped.
    key: String,
    /// `#[serde(skip)]`: never serialized, always defaulted.
    skip: bool,
    /// `#[serde(default)]`: defaulted when absent from the input.
    default: bool,
}

/// The parsed shape of the derive input.
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Derives the shim `serde::Serialize` (conversion into `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__entries.push((\"{key}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{ident})));\n",
                    key = f.key,
                    ident = f.ident,
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(__entries)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derives the shim `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{ident}: ::std::default::Default::default(),\n",
                        ident = f.ident
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{ident}: match __v.get_field(\"{key}\") {{\n\
                             ::std::option::Option::Some(__x) => \
                                 ::serde::Deserialize::from_value(__x)?,\n\
                             ::std::option::Option::None => ::std::default::Default::default(),\n\
                         }},\n",
                        ident = f.ident,
                        key = f.key,
                    ));
                } else {
                    inits.push_str(&format!(
                        "{ident}: match __v.get_field(\"{key}\") {{\n\
                             ::std::option::Option::Some(__x) => \
                                 ::serde::Deserialize::from_value(__x)?,\n\
                             ::std::option::Option::None => return \
                                 ::std::result::Result::Err(::serde::Error::missing_field(\"{key}\")),\n\
                         }},\n",
                        ident = f.ident,
                        key = f.key,
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v.as_str() {{\n\
                             {arms}\
                             _ => ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"unknown variant for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses the derive input into an [`Item`], panicking (→ compile error) on
/// shapes the shim does not support.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Preamble: attributes and visibility before `struct` / `enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                let _ = tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`: consume the paren group.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => panic!("serde_derive shim: unexpected token `{other}` before item"),
            None => panic!("serde_derive shim: no struct or enum found"),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "serde_derive shim: generic type `{name}` is not supported; \
             write the impls by hand or extend crates/shims/serde_derive"
        ),
        _ => panic!(
            "serde_derive shim: `{name}` must be a braced struct or enum \
             (tuple/unit structs are not supported)"
        ),
    };

    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Parses named struct fields, extracting `#[serde(...)]` flags and skipping
/// field types (tracking `<...>` nesting so type-level commas don't split
/// fields).
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();

    loop {
        // Attributes.
        let mut skip = false;
        let mut default = false;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = tokens.next();
                    match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            let (s, d) = serde_flags(g.stream());
                            skip |= s;
                            default |= d;
                        }
                        other => {
                            panic!("serde_derive shim: malformed attribute, found {other:?}")
                        }
                    }
                }
                _ => break,
            }
        }

        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.peek() {
            if id.to_string() == "pub" {
                let _ = tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = tokens.next();
                    }
                }
            }
        }

        // Field name (or end of the field list).
        let ident = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{ident}`, found {other:?}"),
        }

        // Skip the type up to the next top-level comma.  Angle brackets are
        // plain puncts in token streams, so nesting must be tracked by hand.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }

        let key = ident.strip_prefix("r#").unwrap_or(&ident).to_string();
        fields.push(Field {
            ident,
            key,
            skip,
            default,
        });
    }
    fields
}

/// Extracts `(skip, default)` flags from the contents of one `#[...]`
/// attribute; non-`serde` attributes (e.g. doc comments) yield `(false,
/// false)`.
fn serde_flags(attr: TokenStream) -> (bool, bool) {
    let mut tokens = attr.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return (false, false),
    }
    let mut skip = false;
    let mut default = false;
    if let Some(TokenTree::Group(g)) = tokens.next() {
        for tt in g.stream() {
            if let TokenTree::Ident(id) = tt {
                match id.to_string().as_str() {
                    "skip" => skip = true,
                    "default" => default = true,
                    other => panic!(
                        "serde_derive shim: unsupported serde attribute `{other}` \
                         (only `skip` and `default` are implemented)"
                    ),
                }
            }
        }
    }
    (skip, default)
}

/// Parses enum variants, rejecting any that carry data.
fn parse_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Attributes (doc comments on variants).
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() != '#' {
                break;
            }
            let _ = tokens.next();
            let _ = tokens.next();
        }
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: variant `{name}` carries data; only fieldless \
                 enums are supported"
            ),
            other => {
                panic!("serde_derive shim: unexpected token after variant `{name}`: {other:?}")
            }
        }
    }
    variants
}
