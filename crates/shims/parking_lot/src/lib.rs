//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! The build environment has no crates-registry access, so this shim provides
//! the `parking_lot` API surface the workspace uses — [`Mutex`] and
//! [`RwLock`] with panic-free, poison-ignoring guards.  Performance is that
//! of `std::sync` (fine for the engine's coarse per-fragment locks); swap for
//! the real crate when a registry is available.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`: `lock()`
/// never returns a poison error (a poisoned lock is simply re-entered).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock` (poison-ignoring).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock() must ignore poisoning");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
