//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates-registry access, so this shim
//! implements the small slice of the criterion 0.5 API the workspace's bench
//! targets use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::warm_up_time`] /
//! [`BenchmarkGroup::measurement_time`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — a warm-up phase followed by a fixed
//! number of timed samples, reporting min/median/mean — but the harness is
//! honest wall-clock measurement, good enough to compare the relative cost of
//! the GRAPE engine against the baselines.  Swap for real criterion when a
//! registry is available.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a benchmark
/// body; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: holds default settings and runs registered
/// benchmark functions.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Runs one benchmark under the driver's current settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Starts a named group of benchmarks sharing overridden settings.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

pub mod measurement {
    //! Measurement strategies; only wall-clock time is provided.

    /// Wall-clock measurement (the criterion default).
    pub struct WallTime;
}

/// A group of related benchmarks with shared settings, created by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per
    /// benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: warm-up runs until the warm-up window elapses, then
    /// `sample_size` timed samples are collected (stopping early if the
    /// measurement window is exhausted, so slow benchmarks stay bounded).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for i in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            // Always record at least one sample; stop when over budget.
            if i >= 1 && measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id:<50} no samples recorded");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean: Duration = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "bench {id:<50} min {min:>12?}   median {median:>12?}   mean {mean:>12?}   ({} samples)",
            sorted.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro: `$name`
/// becomes a function running every `$target(&mut Criterion)` in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut counter = 0u64;
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::ZERO,
            measurement_time: Duration::from_secs(5),
        };
        c.bench_function("shim_smoke", |b| b.iter(|| counter += 1));
        assert!(counter >= 3, "routine ran {counter} times, expected >= 3");
    }

    #[test]
    fn group_overrides_apply() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::from_secs(5));
        let mut runs = 0u64;
        group.bench_function("inner", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 2);
    }
}
