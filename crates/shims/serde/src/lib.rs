//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! ships a small self-describing serialization framework under the `serde`
//! name.  It is intentionally much simpler than real serde:
//!
//! * [`Serialize`] converts a value into a [`Value`] tree,
//! * [`Deserialize`] reconstructs a value from a [`Value`] tree,
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the companion
//!   `serde_derive` shim) supports structs with named fields and fieldless
//!   enums, plus the `#[serde(skip)]` and `#[serde(default)]` attributes,
//! * the companion `serde_json` shim renders [`Value`] trees to JSON text and
//!   parses them back.
//!
//! The derive and the JSON grammar are compatible with what real
//! serde/serde_json produce for the types in this workspace (maps of named
//! fields, enums as strings, sequences as arrays), so swapping the shims for
//! the real crates later is a manifest-only change.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between
/// [`Serialize`], [`Deserialize`] and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence (JSON array).
    Seq(Vec<Value>),
    /// A map with string keys (JSON object); insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`]; `None` for other variants.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload of a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by deserialization (and by the `serde_json` parser).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A struct field was absent from the input map.
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree (the shim's analogue of
/// `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree (the shim's analogue of
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], failing on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else {
                    // JSON has no non-finite numbers (the writer degrades
                    // `Float(inf)` to `null`), but fixpoint state crosses
                    // worker pipes as JSON and SSSP-style programs carry
                    // `f64::INFINITY` in their partials — spell the three
                    // non-finite values as strings so they round-trip.
                    Value::Str(if f.is_nan() {
                        "nan".to_string()
                    } else if f > 0.0 {
                        "inf".to_string()
                    } else {
                        "-inf".to_string()
                    })
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::Str(s) => match s.as_str() {
                        "nan" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                    },
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::custom("expected 3-element sequence")),
        }
    }
}

/// Types usable as map keys: rendered to/from JSON object-key strings.
pub trait MapKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! numeric_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(concat!("invalid map key for ", stringify!($t)))
                })
            }
        }
    )*};
}

numeric_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort entries so the output is deterministic despite hash ordering.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<usize>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3usize).to_value(), Value::UInt(3));
        assert_eq!(
            Option::<usize>::from_value(&Value::UInt(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn hash_map_keys_are_sorted() {
        let mut m = HashMap::new();
        m.insert(10u64, 1u32);
        m.insert(2u64, 2u32);
        match m.to_value() {
            Value::Map(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["10", "2"]); // lexicographic, deterministic
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn tuple_round_trip() {
        let v = (3u32, 4u32).to_value();
        assert_eq!(<(u32, u32)>::from_value(&v).unwrap(), (3, 4));
    }

    #[test]
    fn integer_range_errors() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }
}
